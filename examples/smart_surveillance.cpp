// Smart video surveillance at the edge — the paper's motivating scenario.
//
// Twenty cameras offload frames to an edge server. Over the day the
// workload swings: quiet periods, rush hours, and a flash crowd. This
// example walks one such timeline phase by phase, showing how the Runtime
// Manager trades pruning rate against confidence threshold, and compares
// the end-of-day totals across all four policies.
//
//   ./build/examples/smart_surveillance

#include <iomanip>
#include <iostream>

#include "core/adapex.hpp"
#include "edge/fleet.hpp"

int main() {
  using namespace adapex;

  std::cout << "Generating the operating-point library (tiny scale)...\n";
  auto scale = ExperimentScale::tiny();
  SyntheticSpec dataset = cifar10_like_spec();
  dataset.noise_max = 1.2;  // demo-sized difficulty (see quickstart.cpp)
  auto spec = make_gen_spec(dataset, scale);
  spec.initial_train.epochs += scale.initial_epochs / 2;
  spec.prune_rates_pct = {0, 25, 50, 75};
  spec.conf_thresholds_pct = {0, 20, 40, 60, 80, 100};
  Library library = Framework::design(spec);

  struct Phase {
    const char* name;
    double load_ratio;  // vs static-FINN capacity
    double duration_s;
  };
  const Phase phases[] = {
      {"early morning (quiet)", 0.4, 10},
      {"rush hour", 1.1, 10},
      {"flash crowd", 1.7, 10},
      {"evening (calming down)", 0.8, 10},
  };

  std::cout << "\n== AdaPEx through the day ==\n";
  std::cout << std::fixed << std::setprecision(2);
  for (const Phase& phase : phases) {
    EdgeScenario sc = scale_to_library(EdgeScenario{}, library, phase.load_ratio);
    sc.duration_s = phase.duration_s;
    sc.seed = 21;
    EdgeMetrics m = Framework::serve(library, {AdaptPolicy::kAdaPEx, 0.10}, sc);
    // Most-used operating point in this phase (from the trace).
    int rate = 0, ct = 0;
    if (!m.trace.empty()) {
      rate = m.trace.back().prune_rate_pct;
      ct = m.trace.back().conf_threshold_pct;
    }
    std::cout << std::setw(26) << phase.name << ": offered "
              << std::setw(6) << m.offered << " served " << std::setw(6)
              << m.served << " | loss " << std::setw(5)
              << m.inference_loss_pct << "% | acc "
              << m.accuracy * 100 << "% | settled at P.R. " << rate
              << "% / C.T. " << ct << "%"
              << (m.reconfigurations ? " (reconfigured)" : "") << "\n";
  }

  std::cout << "\n== end-of-day comparison (rush-hour load, 20 runs) ==\n";
  EdgeScenario sc = scale_to_library(EdgeScenario{}, library, 1.3);
  sc.seed = 42;
  EdgeMetrics finn =
      Framework::serve(library, {AdaptPolicy::kStaticFinn, 0.10}, sc, 20);
  for (AdaptPolicy p : {AdaptPolicy::kAdaPEx, AdaptPolicy::kPrOnly,
                        AdaptPolicy::kCtOnly, AdaptPolicy::kStaticFinn}) {
    EdgeMetrics m = Framework::serve(library, {p, 0.10}, sc, 20);
    std::cout << std::setw(8) << to_string(p) << ": loss " << std::setw(6)
              << m.inference_loss_pct << "% | acc " << m.accuracy * 100
              << "% | QoE " << m.qoe * 100 << "% | EDP vs FINN "
              << (finn.edp > 0 ? m.edp / finn.edp : 0.0) << "x\n";
  }

  // Resilience drill: the same rush hour, but one bitstream load in five
  // fails. PR-Only is the policy that reconfigures in this demo-sized
  // library (AdaPEx settles on the early-exit bitstream and adapts the
  // threshold for free). The self-healing manager keeps serving on the
  // loaded bitstream between backoff-gated retries; a block-retry manager
  // keeps the accelerator dark until a load finally succeeds.
  std::cout << "\n== resilience drill (rush hour, 20% reconfig failures, "
               "PR-Only, 20 runs) ==\n";
  EdgeScenario faulty = sc;
  faulty.deviation = 0.6;
  faulty.faults.reconfig_fail_prob = 0.20;
  for (FailurePolicy fp :
       {FailurePolicy::kGracefulDegrade, FailurePolicy::kBlockRetry}) {
    RuntimePolicy policy{AdaptPolicy::kPrOnly, 0.10};
    policy.backoff.on_failure = fp;
    EdgeMetrics m = Framework::serve(library, policy, faulty, 20);
    std::cout << std::setw(16) << to_string(fp) << ": QoE "
              << m.qoe * 100 << "% | availability " << m.availability_pct
              << "% | failed loads " << m.reconfig_failures / 20.0 << "/run"
              << " | retries " << m.reconfig_retries / 20.0 << "/run"
              << " | degraded " << m.degraded_time_s / 20.0 << " s/run\n";
  }
  std::cout << "(fault-free runs above are unchanged by the fault machinery:"
               " all probabilities default to zero)\n";

  // SEU drill: same rush hour, but radiation flips bits in weight and
  // configuration memory. Unprotected, corrupted inferences are served
  // silently until the drift detector notices and forces a reload; the
  // full mitigation stack (ECC on weight BRAMs + periodic configuration
  // scrubbing + TMR'd exit heads) corrects or masks most upsets at the
  // cost of scrub dark time.
  std::cout << "\n== SEU drill (rush hour, 5% upset rate, AdaPEx, 20 runs) "
               "==\n";
  EdgeScenario seu = sc;
  seu.faults.seu_weight_prob = 0.05;
  seu.faults.seu_config_prob = 0.05;
  struct SeuStep {
    const char* name;
    SeuMitigation mitigation;
  };
  SeuStep steps[2];
  steps[0].name = "unprotected";
  steps[1].name = "ecc+scrub+tmr";
  steps[1].mitigation.ecc_weights = true;
  steps[1].mitigation.scrubbing = true;
  steps[1].mitigation.tmr_exit_heads = true;
  for (const SeuStep& step : steps) {
    seu.faults.mitigation = step.mitigation;
    EdgeMetrics m = Framework::serve(library, {AdaptPolicy::kAdaPEx, 0.10},
                                     seu, 20);
    std::cout << std::setw(16) << step.name << ": acc " << m.accuracy * 100
              << "% | silent " << m.silent_corruptions / 20.0 << "/run"
              << " | corrected " << m.seu_corrected / 20.0 << "/run"
              << " | drift hits " << m.drift_detections / 20.0 << "/run"
              << " | scrubs " << m.seu_scrubs / 20.0 << "/run"
              << " | reloads " << m.seu_reloads / 20.0 << "/run"
              << " | scrub dark " << m.scrub_overhead_s / 20.0 << " s/run\n";
  }

  // Fleet drill: the surveillance deployment grows to four edge servers in
  // two racks, serving an interactive camera tenant (latency SLO) and a
  // batch re-analysis tenant. Rack 0 suffers correlated power events that
  // spike its devices' fault rates together. With staggered
  // reconfiguration the orchestrator keeps projected fleet capacity at or
  // above 70% of deliverable load at all times; unstaggered, concurrent
  // bitstream loads dip below the floor (capacity violations).
  std::cout << "\n== fleet drill (4 devices / 2 racks, correlated faults, "
               "2 tenants) ==\n";
  FleetScenario fleet;
  fleet.base = sc;
  fleet.base.duration_s = 30.0;
  fleet.base.deviation = 0.6;  // swings force pruning-rate switches
  fleet.base.faults.reconfig_fail_prob = 0.05;
  for (int i = 0; i < 4; ++i) {
    FleetDeviceSpec dev;
    dev.name = "edge" + std::to_string(i);
    dev.domain = i / 2;
    fleet.devices.push_back(dev);
  }
  for (const char* rack : {"rack0", "rack1"}) {
    FailureDomain dom;
    dom.name = rack;
    dom.spike_prob = 0.2;
    dom.transient_mult = 6.0;
    fleet.fleet_faults.domains.push_back(dom);
  }
  const double fleet_load = sc.offered_ips() * 4.0;
  TenantSpec cams;
  cams.name = "cameras";
  cams.workload.base_ips = fleet_load * 0.7;
  cams.workload.deviation = 0.4;
  cams.slo_latency_ms = 400.0;
  cams.priority = 1;
  TenantSpec reanalysis;
  reanalysis.name = "re-analysis";
  reanalysis.workload.base_ips = fleet_load * 0.3;
  reanalysis.workload.pattern = WorkloadPattern::kDiurnal;
  fleet.tenants = {cams, reanalysis};
  fleet.breaker.open_after_failures = 3;
  fleet.stagger.min_capacity_fraction = 0.70;
  fleet.stagger.max_defer_s = 1e9;
  // PR-Only is again the policy that reconfigures on this demo library.
  for (bool stagger : {false, true}) {
    fleet.stagger.enabled = stagger;
    FleetMetrics fm = simulate_fleet(library, {AdaptPolicy::kPrOnly, 0.10},
                                     fleet);
    std::cout << std::setw(16) << (stagger ? "staggered" : "unstaggered")
              << ": served " << fm.served << "/" << fm.offered
              << " | availability " << fm.availability_pct << "%"
              << " | p99 " << fm.p99_latency_ms << " ms"
              << " | capacity violations " << fm.capacity_violations
              << " | failovers " << fm.failovers
              << " | rack spikes " << fm.domain_spikes << "\n";
  }
  std::cout << "(a size-1 fleet with fleet mechanisms at defaults reproduces"
               " the single-device episodes above event-for-event)\n";
  return 0;
}
