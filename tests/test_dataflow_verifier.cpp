// Tests for the reach-aware dataflow verifier: stimulus construction,
// static bound soundness against the transaction-level simulator
// (cross-validation), and one broken + one clean fixture per rule R8-R14.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/dataflow.hpp"
#include "analysis/lint.hpp"
#include "common/rng.hpp"
#include "core/scale.hpp"
#include "finn/fifo_sizing.hpp"
#include "library/generator.hpp"
#include "model/cnv.hpp"
#include "pruning/pruning.hpp"

namespace adapex {
namespace analysis {
namespace {

int count_rule(const LintReport& report, const std::string& rule,
               Severity severity) {
  int n = 0;
  for (const auto& d : report.diagnostics) {
    if (d.rule_id == rule && d.severity == severity) ++n;
  }
  return n;
}

struct CompiledFixture {
  CnvConfig cfg;
  BranchyModel model;
  FoldingConfig folding;
  Accelerator acc;

  explicit CompiledFixture(bool with_exits, double scale = 0.25) {
    Rng rng(17);
    cfg = CnvConfig{}.scaled(scale);
    model = with_exits
                ? build_cnv_with_exits(cfg, paper_exits_config(false), rng)
                : build_cnv(cfg, rng);
    auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
    folding = styled_folding(sites);
    AcceleratorConfig acfg;
    acc = compile_accelerator(model, folding, acfg);
  }
};

/// Hand-built 4-module fixture: source -> branch -> {exit head, tail}.
/// The tail is slow (gated bottleneck), so the branch link to it carries a
/// nontrivial occupancy lower bound — the shape the compiled CNV points
/// never produce (their lag has grown past the consumer's cycles by then).
Accelerator tiny_branchy(long tail_cycles = 1000) {
  Accelerator acc;
  acc.num_exits = 1;
  acc.fclk_mhz = 100.0;
  HlsModule source;
  source.kind = HlsModuleKind::kSwu;
  source.name = "source";
  source.cycles = 10;
  HlsModule branch;
  branch.kind = HlsModuleKind::kBranch;
  branch.name = "branch";
  branch.cycles = 10;
  HlsModule head;
  head.kind = HlsModuleKind::kMvtu;
  head.name = "exit0.fc";
  head.cycles = 10;
  head.exit_head = 0;
  head.exit_level = 0;
  HlsModule tail;
  tail.kind = HlsModuleKind::kMvtu;
  tail.name = "tail.fc";
  tail.cycles = tail_cycles;
  tail.exit_level = 1;
  acc.modules = {source, branch, head, tail};
  acc.paths = {{0, 1, 2}, {0, 1, 3}};
  for (const auto& m : acc.modules) acc.total += m.resources;
  return acc;
}

// ---------------------------------------------------------------------------
// Stimulus construction.

TEST(GatedStimulus, RealizesCountsExactly) {
  const std::vector<double> fractions = {0.5, 0.3, 0.2};
  const auto stim = make_gated_stimulus(fractions, 10);
  ASSERT_EQ(stim.size(), 10u);
  std::vector<int> count(3, 0);
  for (int e : stim) {
    ASSERT_GE(e, 0);
    ASSERT_LE(e, 2);
    count[static_cast<std::size_t>(e)] += 1;
  }
  EXPECT_EQ(count[0], 5);
  EXPECT_EQ(count[1], 3);
  EXPECT_EQ(count[2], 2);
}

TEST(GatedStimulus, DeterministicAndLargestRemainder) {
  const std::vector<double> fractions = {0.6, 0.25, 0.15};
  const auto a = make_gated_stimulus(fractions, 997);
  const auto b = make_gated_stimulus(fractions, 997);
  EXPECT_EQ(a, b);
  std::vector<int> count(3, 0);
  for (int e : a) count[static_cast<std::size_t>(e)] += 1;
  // Largest remainder: each count within 1 of the ideal share.
  EXPECT_NEAR(count[0], 0.6 * 997, 1.0);
  EXPECT_NEAR(count[1], 0.25 * 997, 1.0);
  EXPECT_NEAR(count[2], 0.15 * 997, 1.0);
}

TEST(GatedStimulus, SurvivorsEvenlySpread) {
  const std::vector<double> fractions = {0.5, 0.3, 0.2};
  const std::size_t n = 1000;
  const auto stim = make_gated_stimulus(fractions, n);
  // Nested Bresenham: every "survives past level L" prefix count stays
  // within a small constant of the ideal line (one rounding per level).
  for (int level = 0; level < 2; ++level) {
    double survive = 0.0;
    for (std::size_t e = static_cast<std::size_t>(level) + 1;
         e < fractions.size(); ++e) {
      survive += fractions[e];
    }
    int seen = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (stim[i] > level) ++seen;
      const double ideal = survive * static_cast<double>(i + 1);
      EXPECT_LE(std::abs(seen - ideal), 2.0 + 1e-9)
          << "level " << level << " prefix " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Zero-exit reduction: with reach == 1 everywhere the verifier must agree
// with the ungated model and raise none of the gating rules.

TEST(DataflowVerifier, ZeroExitReducesToUngatedModel) {
  CompiledFixture fx(false);
  const DataflowReport rep = analyze_dataflow(fx.acc, {1.0});
  EXPECT_FALSE(rep.lint.has_errors()) << rep.lint.format_table();
  EXPECT_EQ(rep.lint.count(Severity::kWarning), 0u)
      << rep.lint.format_table();
  long max_cycles = 0;
  for (const auto& m : fx.acc.modules) {
    max_cycles = std::max(max_cycles, m.cycles);
  }
  EXPECT_DOUBLE_EQ(rep.steady_ii_cycles, static_cast<double>(max_cycles));
  EXPECT_DOUBLE_EQ(rep.front_ii_cycles, rep.steady_ii_cycles);
  for (double r : rep.module_reach) EXPECT_DOUBLE_EQ(r, 1.0);

  const CrossValidation cv = cross_validate(fx.acc, {1.0});
  EXPECT_TRUE(cv.passed) << cv.summary() << "\n" << cv.lint.format_table();
}

// ---------------------------------------------------------------------------
// Agreement harness on the paper's design points.

TEST(DataflowVerifier, CrossValidatesStyledCnvWithExits) {
  CompiledFixture fx(true);
  const CrossValidation cv =
      cross_validate(fx.acc, {0.5, 0.3, 0.2});
  EXPECT_TRUE(cv.passed) << cv.summary() << "\n" << cv.lint.format_table();
  EXPECT_LE(cv.ii_rel_err, 0.01);
  EXPECT_FALSE(cv.links.empty());
  for (const auto& link : cv.links) {
    EXPECT_TRUE(link.ok) << link.producer << " -> " << link.consumer << ": "
                         << link.measured_high_water << " not in ["
                         << link.lower << ", " << link.upper << "]";
  }
}

TEST(DataflowVerifier, CrossValidatesTinyBranchyFixture) {
  const Accelerator acc = tiny_branchy();
  const CrossValidation cv = cross_validate(acc, {0.8, 0.2});
  EXPECT_TRUE(cv.passed) << cv.summary() << "\n" << cv.lint.format_table();
}

TEST(DataflowVerifier, RandomizedFoldingAndFractionsStayInsideBounds) {
  Rng rng(20260808);
  CnvConfig cfg = CnvConfig{}.scaled(0.25);
  for (int trial = 0; trial < 5; ++trial) {
    Rng model_rng(100 + static_cast<std::uint64_t>(trial));
    BranchyModel model =
        build_cnv_with_exits(cfg, paper_exits_config(false), model_rng);
    auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
    const int pe_cap = 1 << rng.uniform_index(3);    // 1, 2, 4
    const int simd_cap = 1 << rng.uniform_index(4);  // 1..8
    FoldingConfig folding = default_folding(sites, pe_cap, simd_cap);
    AcceleratorConfig acfg;
    Accelerator acc = compile_accelerator(model, folding, acfg);

    // Random exit distribution, each output at least 5% so the gated
    // bottleneck's steady window stays affordable to simulate.
    std::vector<double> fractions(static_cast<std::size_t>(acc.num_exits) + 1);
    double sum = 0.0;
    for (double& f : fractions) {
      f = 0.05 + rng.uniform();
      sum += f;
    }
    for (double& f : fractions) f /= sum;

    const CrossValidation cv = cross_validate(acc, fractions);
    EXPECT_TRUE(cv.passed)
        << "trial " << trial << " pe_cap " << pe_cap << " simd_cap "
        << simd_cap << ": " << cv.summary() << "\n"
        << cv.lint.format_table();
  }
}

// ---------------------------------------------------------------------------
// One shared measurement path: size_fifos must provision exactly the
// high-water marks the cross-validator's paced run measures.

TEST(DataflowVerifier, SizeFifosSharesTheMeasurementPath) {
  CompiledFixture fx(true);
  const std::vector<double> fractions = {0.5, 0.3, 0.2};
  const CrossValidation cv = cross_validate(fx.acc, fractions);
  ASSERT_TRUE(cv.passed) << cv.summary();

  const auto stim = make_gated_stimulus(fractions, cv.num_images);
  const auto reqs = size_fifos(fx.acc, stim, /*safety_margin=*/1.0);
  ASSERT_EQ(reqs.size(), cv.links.size());
  for (const auto& req : reqs) {
    const auto it = std::find_if(
        cv.links.begin(), cv.links.end(), [&](const auto& l) {
          return l.producer == req.producer && l.consumer == req.consumer;
        });
    ASSERT_NE(it, cv.links.end());
    EXPECT_EQ(req.high_water_images, it->measured_high_water)
        << req.describe(fx.acc);
    EXPECT_EQ(req.depth_images, std::max(req.high_water_images, 1));
  }
}

// ---------------------------------------------------------------------------
// R8: reach consistency.

TEST(DataflowRules, R8FlagsBrokenDistributions) {
  CompiledFixture fx(true);
  // Wrong arity.
  EXPECT_GT(count_rule(analyze_dataflow(fx.acc, {0.5, 0.5}).lint, "R8",
                       Severity::kError),
            0);
  // Out-of-range fraction and over-counted survival.
  const auto rep = analyze_dataflow(fx.acc, {0.7, 0.5, -0.2});
  EXPECT_GE(count_rule(rep.lint, "R8", Severity::kError), 2);
  // Sum != 1.
  EXPECT_GT(count_rule(analyze_dataflow(fx.acc, {0.5, 0.3, 0.1}).lint, "R8",
                       Severity::kError),
            0);
}

TEST(DataflowRules, R8PassesCleanDistribution) {
  CompiledFixture fx(true);
  const auto rep = analyze_dataflow(fx.acc, {0.5, 0.3, 0.2});
  EXPECT_EQ(count_rule(rep.lint, "R8", Severity::kError), 0);
}

// ---------------------------------------------------------------------------
// R9: reach-scaled II feasibility.

TEST(DataflowRules, R9FlagsGatedBottleneck) {
  // Tail folded so slowly that even at 20% reach it dominates the front
  // II (10 cycles) by far more than the slack factor.
  const Accelerator acc = tiny_branchy(1000);
  const auto rep = analyze_dataflow(acc, {0.8, 0.2});
  EXPECT_EQ(count_rule(rep.lint, "R9", Severity::kWarning), 1)
      << rep.lint.format_table();
}

TEST(DataflowRules, R9PassesBalancedTail) {
  const Accelerator acc = tiny_branchy(12);  // 12 * 0.2 << 1.25 * 10
  const auto rep = analyze_dataflow(acc, {0.8, 0.2});
  EXPECT_EQ(count_rule(rep.lint, "R9", Severity::kWarning), 0)
      << rep.lint.format_table();
}

// ---------------------------------------------------------------------------
// R10 / R11 (plan checks): FIFO depth lower bounds and wedge hazards.

TEST(DataflowRules, R10FlagsUnderProvisionedPlan) {
  const Accelerator acc = tiny_branchy(1000);
  DataflowOptions opts;
  const auto bounds = analyze_dataflow(acc, {0.8, 0.2}, opts);
  // The branch -> tail link needs more than one image of buffering: while
  // the tail serves one image, several paced arrivals queue behind it.
  int tail_lower = 0;
  for (const auto& lb : bounds.links) {
    if (lb.consumer == 3) tail_lower = lb.occupancy_lower;
  }
  ASSERT_GT(tail_lower, 1);

  std::vector<FifoRequirement> plan;
  for (const auto& lb : bounds.links) {
    FifoRequirement req;
    req.producer = lb.producer;
    req.consumer = lb.consumer;
    req.depth_images = (lb.consumer == 3) ? tail_lower - 1 : lb.occupancy_upper;
    plan.push_back(req);
  }
  opts.fifo_plan = &plan;
  const auto rep = analyze_dataflow(acc, {0.8, 0.2}, opts);
  EXPECT_EQ(count_rule(rep.lint, "R10", Severity::kError), 1)
      << rep.lint.format_table();

  // Raising the plan to the upper bounds clears the rule.
  for (auto& req : plan) {
    for (const auto& lb : bounds.links) {
      if (lb.producer == req.producer && lb.consumer == req.consumer) {
        req.depth_images = lb.occupancy_upper;
      }
    }
  }
  const auto clean = analyze_dataflow(acc, {0.8, 0.2}, opts);
  EXPECT_EQ(count_rule(clean.lint, "R10", Severity::kError), 0)
      << clean.lint.format_table();
  EXPECT_EQ(count_rule(clean.lint, "R11", Severity::kWarning), 0)
      << clean.lint.format_table();
}

TEST(DataflowRules, R10FlagsMissingLinkInPlan) {
  const Accelerator acc = tiny_branchy();
  std::vector<FifoRequirement> plan;  // empty: nothing provisioned
  DataflowOptions opts;
  opts.fifo_plan = &plan;
  const auto rep = analyze_dataflow(acc, {0.8, 0.2}, opts);
  EXPECT_GT(count_rule(rep.lint, "R10", Severity::kError), 0);
}

TEST(DataflowRules, R11FlagsZeroDepthAndBranchWedge) {
  const Accelerator acc = tiny_branchy(1000);
  const auto bounds = analyze_dataflow(acc, {0.8, 0.2});
  std::vector<FifoRequirement> plan;
  for (const auto& lb : bounds.links) {
    FifoRequirement req;
    req.producer = lb.producer;
    req.consumer = lb.consumer;
    if (lb.consumer == 2) {
      req.depth_images = 0;  // zero-depth exit-head link: instant wedge
    } else if (lb.consumer == 3) {
      // Meets the lower bound but not the proven-sufficient depth on a
      // Branch-fed link: sibling-stall hazard, warned not errored.
      req.depth_images = lb.occupancy_lower;
      EXPECT_LT(req.depth_images, lb.occupancy_upper);
    } else {
      req.depth_images = lb.occupancy_upper;
    }
    plan.push_back(req);
  }
  DataflowOptions opts;
  opts.fifo_plan = &plan;
  const auto rep = analyze_dataflow(acc, {0.8, 0.2}, opts);
  EXPECT_EQ(count_rule(rep.lint, "R11", Severity::kError), 1)
      << rep.lint.format_table();
  EXPECT_EQ(count_rule(rep.lint, "R11", Severity::kWarning), 1)
      << rep.lint.format_table();
}

TEST(DataflowRules, R11FlagsCyclicStreamGraph) {
  Accelerator acc;
  acc.num_exits = 0;
  HlsModule a;
  a.name = "a";
  a.cycles = 10;
  HlsModule b;
  b.name = "b";
  b.cycles = 10;
  acc.modules = {a, b};
  acc.paths = {{0, 1, 0}};
  const auto rep = analyze_dataflow(acc, {1.0});
  EXPECT_GT(count_rule(rep.lint, "R11", Severity::kError), 0)
      << rep.lint.format_table();
}

// ---------------------------------------------------------------------------
// R12: reach-vs-Library drift.

TEST(DataflowRules, R12FlagsDriftedEntry) {
  CompiledFixture fx(true);
  LibraryEntry entry;
  entry.accel_id = 1;
  entry.exit_fractions = {0.5, 0.3, 0.2};
  const double ii = gated_steady_ii(fx.acc, entry.exit_fractions);
  entry.ips = fx.acc.fclk_hz() / ii;
  EXPECT_EQ(count_rule(lint_entry_reach(fx.acc, entry), "R12",
                       Severity::kError),
            0);
  entry.ips *= 1.2;  // stale record: accelerator was re-folded since
  EXPECT_EQ(count_rule(lint_entry_reach(fx.acc, entry), "R12",
                       Severity::kError),
            1);
}

// ---------------------------------------------------------------------------
// R13: duplicated-stream buffering cost vs. device BRAM.

TEST(DataflowRules, R13WarnsOnTinyDevice) {
  CompiledFixture fx(true);
  DataflowOptions opts;
  opts.device.name = "toy";
  opts.device.caps.bram = 1;
  const auto rep = analyze_dataflow(fx.acc, {0.5, 0.3, 0.2}, opts);
  EXPECT_EQ(count_rule(rep.lint, "R13", Severity::kWarning), 1)
      << rep.lint.format_table();
}

TEST(DataflowRules, R13AccountsOnRealDevice) {
  CompiledFixture fx(true);
  const auto rep = analyze_dataflow(fx.acc, {0.5, 0.3, 0.2});
  EXPECT_EQ(count_rule(rep.lint, "R13", Severity::kWarning), 0)
      << rep.lint.format_table();
  EXPECT_EQ(count_rule(rep.lint, "R13", Severity::kInfo), 1);
  EXPECT_GT(rep.fifo_bram_upper, 0);
}

// ---------------------------------------------------------------------------
// R14: gated-throughput accounting.

TEST(DataflowRules, R14FlagsTamperedPerf) {
  CompiledFixture fx(true);
  const std::vector<double> fractions = {0.5, 0.3, 0.2};
  AcceleratorPerf perf =
      estimate_performance(fx.acc, fractions, PowerModel{});
  EXPECT_EQ(count_rule(lint_gated_throughput(fx.acc, fractions, perf), "R14",
                       Severity::kError),
            0);
  perf.ips *= 1.1;
  perf.latency_ms *= 0.9;
  EXPECT_EQ(count_rule(lint_gated_throughput(fx.acc, fractions, perf), "R14",
                       Severity::kError),
            2);
}

TEST(DataflowRules, R14FlagsInconsistentGatingMetadata) {
  // Hand-built accelerator whose exit head claims exit_head=0 but carries
  // exit_level=1: the analytical model (exit_level) and the gating model
  // (exit_head) price it differently, which R14 must surface.
  Accelerator acc = tiny_branchy(1000);
  acc.modules[2].exit_level = 1;
  acc.modules[2].cycles = 2000;  // make the head the ips-relevant module
  const auto rep = analyze_dataflow(acc, {0.8, 0.2});
  EXPECT_GT(count_rule(rep.lint, "R14", Severity::kError), 0)
      << rep.lint.format_table();
}

// ---------------------------------------------------------------------------
// lint() integration: the catalog runs end to end on a compiled design.

TEST(DataflowRules, LintAcceleratorMergesDataflowRules) {
  CompiledFixture fx(true);
  LintOptions opts;
  opts.exit_fractions = {0.5, 0.3, 0.2};
  const LintReport report = lint_accelerator(fx.acc, opts);
  EXPECT_FALSE(report.has_errors()) << report.format_table();
  EXPECT_EQ(count_rule(report, "R13", Severity::kInfo), 1);
}

// ---------------------------------------------------------------------------
// generate_library --verify: every emitted row passes R12 and the
// agreement harness (the tentpole's acceptance criterion, at tiny scale).

TEST(DataflowRules, GenerateLibraryVerifiesEveryRow) {
  auto spec = make_gen_spec(cifar10_like_spec(), ExperimentScale::tiny());
  spec.prune_rates_pct = {0};
  spec.conf_thresholds_pct = {0, 50, 100};
  spec.variants = {ModelVariant::kNoExit, ModelVariant::kNotPrunedExits};
  spec.verify_dataflow = true;
  const Library lib = generate_library(spec);
  EXPECT_FALSE(lib.entries.empty());
}

}  // namespace
}  // namespace analysis
}  // namespace adapex
