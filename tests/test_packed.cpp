// Tests for the bit-plane-packed W2A2 inference path (tensor/packed.hpp,
// nn/quant.hpp freeze_packed / packed_forward, nn/eval.hpp dispatch):
// pack/unpack round-trips, popcount GEMM vs integer and float references,
// cross-tier byte-identity, freeze preconditions (rule RQ1), bitwise
// argmax/exit-decision agreement with the float path on a trained CNV,
// thread-count byte-identity, and library byte-identity packed-on vs
// packed-off.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/scale.hpp"
#include "data/dataset.hpp"
#include "library/generator.hpp"
#include "model/cnv.hpp"
#include "nn/eval.hpp"
#include "nn/trainer.hpp"
#include "tensor/packed.hpp"

namespace adapex {
namespace {

// Reduction lengths chosen to exercise the word tails: below one word,
// exact multiples of 64, one past, primes, and pruned-channel style
// non-multiples of 32 (the packing unit is 64 lanes; a pruned CNV layer's
// C*k*k is rarely a multiple of either).
const int kLens[] = {1, 7, 31, 57, 63, 64, 65, 91, 128, 130, 300};

std::vector<std::int8_t> random_ternary(int rows, int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int8_t> codes(static_cast<std::size_t>(rows) * k);
  for (auto& c : codes) {
    const double u = rng.uniform();
    c = u < 0.4 ? std::int8_t{0} : (u < 0.7 ? std::int8_t{1} : std::int8_t{-1});
  }
  return codes;
}

std::vector<std::uint8_t> random_acts(int cols, int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> codes(static_cast<std::size_t>(cols) * k);
  for (auto& c : codes) {
    c = static_cast<std::uint8_t>(rng.uniform() * 4.0);
    if (c > 3) c = 3;
  }
  return codes;
}

TEST(Packed, WeightRoundTripIsExact) {
  for (int k : kLens) {
    const int rows = 5;
    const auto codes = random_ternary(rows, k, 1000 + static_cast<unsigned>(k));
    packed::PackedWeights w;
    packed::pack_weights(codes.data(), rows, k, w);
    EXPECT_EQ(w.words, (k + 63) / 64);
    std::vector<std::int8_t> back(codes.size(), 99);
    packed::unpack_weights(w, back.data());
    EXPECT_EQ(codes, back) << "k=" << k;
    // Tail lanes beyond k must be zero in every plane (the GEMM relies on
    // it instead of masking).
    for (int r = 0; r < rows; ++r) {
      const std::size_t last = static_cast<std::size_t>(r) * w.words + w.words - 1;
      const int used = k - (w.words - 1) * 64;
      if (used < 64) {
        const std::uint64_t mask = ~((1ull << used) - 1);
        EXPECT_EQ(0u, w.plus[last] & mask);
        EXPECT_EQ(0u, w.minus[last] & mask);
      }
    }
  }
}

TEST(Packed, ActivationRoundTripIsExact) {
  for (int k : kLens) {
    const int cols = 7;
    const auto codes = random_acts(cols, k, 2000 + static_cast<unsigned>(k));
    packed::PackedActivations a;
    packed::pack_activations(codes.data(), cols, k, a);
    std::vector<std::uint8_t> back(codes.size(), 99);
    packed::unpack_activations(a, back.data());
    EXPECT_EQ(codes, back) << "k=" << k;
  }
}

TEST(Packed, PopcountGemmMatchesIntegerReference) {
  for (int k : kLens) {
    const int rows = 9;
    const int cols = 13;
    const auto wc = random_ternary(rows, k, 3000 + static_cast<unsigned>(k));
    const auto ac = random_acts(cols, k, 4000 + static_cast<unsigned>(k));
    packed::PackedWeights w;
    packed::pack_weights(wc.data(), rows, k, w);
    packed::PackedActivations a;
    packed::pack_activations(ac.data(), cols, k, a);

    std::vector<std::int32_t> got(static_cast<std::size_t>(rows) * cols, -7);
    packed::Epilogue e;
    e.mode = packed::Epilogue::Mode::kInt32;
    e.s32 = got.data();
    e.row_stride = static_cast<std::size_t>(cols);
    e.col_stride = 1;
    packed::popcount_gemm(w, a, e);

    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        std::int32_t ref = 0;
        for (int i = 0; i < k; ++i) {
          ref += wc[static_cast<std::size_t>(r) * k + i] *
                 static_cast<std::int32_t>(ac[static_cast<std::size_t>(c) * k + i]);
        }
        ASSERT_EQ(ref, got[static_cast<std::size_t>(r) * cols + c])
            << "k=" << k << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(Packed, EpiloguesMatchManualComposition) {
  const int rows = 6, cols = 10, k = 91;
  const auto wc = random_ternary(rows, k, 51);
  const auto ac = random_acts(cols, k, 52);
  packed::PackedWeights w;
  packed::pack_weights(wc.data(), rows, k, w);
  packed::PackedActivations a;
  packed::pack_activations(ac.data(), cols, k, a);

  std::vector<std::int32_t> s32(static_cast<std::size_t>(rows) * cols);
  packed::Epilogue ei;
  ei.mode = packed::Epilogue::Mode::kInt32;
  ei.s32 = s32.data();
  ei.row_stride = static_cast<std::size_t>(cols);
  packed::popcount_gemm(w, a, ei);

  Rng rng(53);
  std::vector<float> scale(rows), bias(rows);
  for (int r = 0; r < rows; ++r) {
    scale[static_cast<std::size_t>(r)] =
        static_cast<float>(rng.uniform() * 0.02 + 0.001);
    bias[static_cast<std::size_t>(r)] =
        static_cast<float>(rng.uniform() * 0.5 - 0.25);
  }
  const float act_scale = 0.8f;

  // Quantize epilogue == manual z -> clamp -> round pipeline on the raw S.
  std::vector<std::uint8_t> codes(static_cast<std::size_t>(rows) * cols, 99);
  packed::Epilogue eq;
  eq.mode = packed::Epilogue::Mode::kQuantize;
  eq.scale = scale.data();
  eq.bias = bias.data();
  eq.act_scale = act_scale;
  eq.act_levels = 3;
  eq.codes = codes.data();
  eq.row_stride = static_cast<std::size_t>(cols);
  packed::popcount_gemm(w, a, eq);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const std::size_t at = static_cast<std::size_t>(r) * cols + c;
      const float z = scale[static_cast<std::size_t>(r)] *
                          static_cast<float>(s32[at]) +
                      bias[static_cast<std::size_t>(r)];
      const float clamped = std::clamp(z, 0.0f, act_scale);
      const auto want = static_cast<std::uint8_t>(
          std::lround(clamped / act_scale * 3.0f));
      ASSERT_EQ(want, codes[at]) << "r=" << r << " c=" << c;
    }
  }

  // Logits epilogue with the linear layout (row_stride=1, col_stride=rows):
  // element (r, c) lands batch-major.
  std::vector<float> logits(static_cast<std::size_t>(rows) * cols, -1.0f);
  packed::Epilogue el;
  el.mode = packed::Epilogue::Mode::kLogits;
  el.scale = scale.data();
  el.logits = logits.data();
  el.row_stride = 1;
  el.col_stride = static_cast<std::size_t>(rows);
  packed::popcount_gemm(w, a, el);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const float want = scale[static_cast<std::size_t>(r)] *
                         static_cast<float>(
                             s32[static_cast<std::size_t>(r) * cols + c]);
      ASSERT_EQ(want,
                logits[static_cast<std::size_t>(c) * rows + r]);
    }
  }
}

TEST(Packed, AllSupportedIsaTiersAgreeBitwise) {
  const std::string initial = packed::active_isa();
  const int rows = 11, cols = 17, k = 257;
  const auto wc = random_ternary(rows, k, 61);
  const auto ac = random_acts(cols, k, 62);
  packed::PackedWeights w;
  packed::pack_weights(wc.data(), rows, k, w);
  packed::PackedActivations a;
  packed::pack_activations(ac.data(), cols, k, a);
  std::vector<float> scale(rows, 0.003f), bias(rows, -0.1f);

  std::vector<std::vector<std::int32_t>> s32_by_tier;
  std::vector<std::vector<std::uint8_t>> codes_by_tier;
  int tiers = 0;
  for (const char* isa : {"scalar", "avx2", "avx512", "avx512vp"}) {
    try {
      packed::force_isa(isa);
    } catch (const ConfigError&) {
      continue;  // host lacks this tier
    }
    ++tiers;
    std::vector<std::int32_t> s32(static_cast<std::size_t>(rows) * cols);
    packed::Epilogue ei;
    ei.mode = packed::Epilogue::Mode::kInt32;
    ei.s32 = s32.data();
    ei.row_stride = static_cast<std::size_t>(cols);
    packed::popcount_gemm(w, a, ei);
    s32_by_tier.push_back(std::move(s32));

    std::vector<std::uint8_t> codes(static_cast<std::size_t>(rows) * cols);
    packed::Epilogue eq;
    eq.mode = packed::Epilogue::Mode::kQuantize;
    eq.scale = scale.data();
    eq.bias = bias.data();
    eq.act_scale = 0.9f;
    eq.codes = codes.data();
    eq.row_stride = static_cast<std::size_t>(cols);
    packed::popcount_gemm(w, a, eq);
    codes_by_tier.push_back(std::move(codes));
  }
  packed::force_isa(initial.c_str());

  ASSERT_GE(tiers, 1);  // scalar is always supported
  for (std::size_t i = 1; i < s32_by_tier.size(); ++i) {
    EXPECT_EQ(s32_by_tier[0], s32_by_tier[i]);
    EXPECT_EQ(codes_by_tier[0], codes_by_tier[i]);
  }
}

TEST(Packed, ForceIsaRejectsUnknownName) {
  EXPECT_THROW(packed::force_isa("avx9000"), ConfigError);
  EXPECT_THROW(packed::force_isa(nullptr), Error);
}

TEST(Packed, PackedModeEnvParsing) {
  ::unsetenv("ADAPEX_PACKED");
  EXPECT_EQ(packed_mode_from_env(), PackedMode::kAuto);
  ::setenv("ADAPEX_PACKED", "0", 1);
  EXPECT_EQ(packed_mode_from_env(), PackedMode::kOff);
  ::setenv("ADAPEX_PACKED", "1", 1);
  EXPECT_EQ(packed_mode_from_env(), PackedMode::kOn);
  ::setenv("ADAPEX_PACKED", "auto", 1);
  EXPECT_EQ(packed_mode_from_env(), PackedMode::kAuto);
  ::setenv("ADAPEX_PACKED", "banana", 1);
  EXPECT_THROW(packed_mode_from_env(), ConfigError);  // rule RQ3
  ::unsetenv("ADAPEX_PACKED");
}

// ------------------------------------------------------------- model level

/// One trained tiny CNV with exits shared across the model-level tests.
struct TrainedFixture {
  SyntheticDataset data;
  BranchyModel model;
};

TrainedFixture& trained() {
  static TrainedFixture* fx = [] {
    SyntheticSpec spec = cifar10_like_spec();
    spec.train_size = 96;
    spec.test_size = 64;
    Rng rng(42);
    CnvConfig cfg = CnvConfig{}.scaled(0.125);
    cfg.num_classes = spec.num_classes;
    auto* f = new TrainedFixture{
        make_synthetic(spec),
        build_cnv_with_exits(cfg, paper_exits_config(false), rng)};
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 16;
    train_model(f->model, f->data.train, spec.flip_symmetry, tc);
    return f;
  }();
  return *fx;
}

TEST(PackedModel, FreezeEligibilityAndRq1) {
  TrainedFixture& fx = trained();
  std::vector<std::string> reasons;
  EXPECT_TRUE(can_freeze(fx.model, &reasons)) << (reasons.empty()
                                                      ? std::string()
                                                      : reasons.front());
  EXPECT_TRUE(reasons.empty());

  // A wider-bit model must be rejected with an aggregated RQ1 error.
  Rng rng(7);
  CnvConfig wide = CnvConfig{}.scaled(0.125);
  wide.weight_bits = 4;
  BranchyModel w4 = build_cnv(wide, rng);
  reasons.clear();
  EXPECT_FALSE(can_freeze(w4, &reasons));
  EXPECT_FALSE(reasons.empty());
  try {
    freeze_packed(w4);
    FAIL() << "freeze_packed should reject a W4 model";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("RQ1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("weight_bits=4"), std::string::npos);
  }
}

TEST(PackedModel, ForwardMatchesFloatLogitsAndDecisionsAtEveryTier) {
  TrainedFixture& fx = trained();
  const PackedModel frozen = freeze_packed(fx.model);

  std::vector<int> order(32);
  for (int i = 0; i < 32; ++i) order[static_cast<std::size_t>(i)] = i;
  const Tensor batch = fx.data.test.batch_images(order.data(), 32);
  const auto float_logits = fx.model.forward(batch, /*train=*/false);

  const std::string initial = packed::active_isa();
  for (const char* isa : {"scalar", "avx2", "avx512", "avx512vp"}) {
    try {
      packed::force_isa(isa);
    } catch (const ConfigError&) {
      continue;
    }
    PackedScratch scratch;
    const auto packed_logits = packed_forward(frozen, batch, scratch);
    ASSERT_EQ(float_logits.size(), packed_logits.size()) << isa;
    for (std::size_t e = 0; e < float_logits.size(); ++e) {
      ASSERT_EQ(float_logits[e].shape(), packed_logits[e].shape()) << isa;
      for (int n = 0; n < float_logits[e].dim(0); ++n) {
        int fbest = 0, pbest = 0;
        for (int c = 1; c < float_logits[e].dim(1); ++c) {
          if (float_logits[e].at2(n, c) > float_logits[e].at2(n, fbest)) {
            fbest = c;
          }
          if (packed_logits[e].at2(n, c) > packed_logits[e].at2(n, pbest)) {
            pbest = c;
          }
        }
        // Bitwise decision agreement; logits agree to a tight tolerance
        // (the packed reduction is exact, only the folded epilogue and the
        // float path's accumulation order differ).
        ASSERT_EQ(fbest, pbest) << isa << " exit=" << e << " n=" << n;
        for (int c = 0; c < float_logits[e].dim(1); ++c) {
          ASSERT_NEAR(float_logits[e].at2(n, c), packed_logits[e].at2(n, c),
                      2e-4)
              << isa << " exit=" << e << " n=" << n << " c=" << c;
        }
      }
    }
  }
  packed::force_isa(initial.c_str());
}

TEST(PackedModel, EvaluateExitsDecisionIdentityPackedVsFloat) {
  TrainedFixture& fx = trained();
  const auto f = evaluate_exits(fx.model, fx.data.test, 16, 1,
                                PackedMode::kOff);
  const auto p = evaluate_exits(fx.model, fx.data.test, 16, 1,
                                PackedMode::kOn);
  ASSERT_EQ(f.correct.size(), p.correct.size());
  for (std::size_t s = 0; s < f.correct.size(); ++s) {
    // Argmax-correctness must agree bitwise sample by sample...
    ASSERT_TRUE(f.correct[s] == p.correct[s]) << "sample " << s;
    for (std::size_t e = 0; e < f.confidence[s].size(); ++e) {
      ASSERT_NEAR(f.confidence[s][e], p.confidence[s][e], 2e-4);
    }
  }
  // ...and so must every threshold decision the library sweep derives.
  for (int t = 0; t <= 100; t += 5) {
    const auto sf = apply_threshold(f, t / 100.0);
    const auto sp = apply_threshold(p, t / 100.0);
    ASSERT_EQ(sf.accuracy, sp.accuracy) << "threshold " << t;
    ASSERT_EQ(sf.exit_fraction, sp.exit_fraction) << "threshold " << t;
  }
}

TEST(PackedModel, PackedEvalByteIdenticalAcrossThreadCounts) {
  TrainedFixture& fx = trained();
  const auto serial = evaluate_exits(fx.model, fx.data.test, 16, 1,
                                     PackedMode::kOn);
  for (int threads : {2, 4}) {
    const auto parallel = evaluate_exits(fx.model, fx.data.test, 16, threads,
                                         PackedMode::kOn);
    ASSERT_EQ(serial.confidence.size(), parallel.confidence.size());
    for (std::size_t s = 0; s < serial.confidence.size(); ++s) {
      ASSERT_EQ(0, std::memcmp(serial.confidence[s].data(),
                               parallel.confidence[s].data(),
                               serial.confidence[s].size() * sizeof(float)))
          << "threads=" << threads << " sample=" << s;
      ASSERT_TRUE(serial.correct[s] == parallel.correct[s]);
    }
  }
}

TEST(PackedModel, ResolvedEvalPathFollowsModeAndModel) {
  TrainedFixture& fx = trained();
  EXPECT_STREQ("float", resolved_eval_path(fx.model, PackedMode::kOff));
  EXPECT_STREQ("packed", resolved_eval_path(fx.model, PackedMode::kOn));
  EXPECT_STREQ("packed", resolved_eval_path(fx.model, PackedMode::kAuto));
  Rng rng(7);
  CnvConfig wide = CnvConfig{}.scaled(0.125);
  wide.weight_bits = 4;
  BranchyModel w4 = build_cnv(wide, rng);
  EXPECT_STREQ("float", resolved_eval_path(w4, PackedMode::kAuto));
}

// ------------------------------------------------------------ library level

TEST(PackedLibrary, ByteIdenticalPackedOnVsOffAtAnyThreadCount) {
  auto spec = make_gen_spec(cifar10_like_spec(), ExperimentScale::tiny());
  spec.prune_rates_pct = {0, 50};
  spec.conf_thresholds_pct = {0, 50, 100};

  spec.eval_path = "float";
  spec.num_threads = 1;
  GenerationReport float_report;
  spec.report = &float_report;
  const std::string float_bytes =
      generate_library(spec).to_json().dump(1);

  spec.eval_path = "packed";
  spec.num_threads = 2;
  GenerationReport packed_report;
  spec.report = &packed_report;
  const std::string packed_bytes =
      generate_library(spec).to_json().dump(1);

  EXPECT_EQ(float_bytes, packed_bytes);

  // The report records which path evaluated each computed point.
  ASSERT_FALSE(float_report.points.empty());
  for (const auto& pt : float_report.points) {
    EXPECT_EQ("float", pt.eval_path) << "point " << pt.index;
  }
  for (const auto& pt : packed_report.points) {
    EXPECT_EQ("packed", pt.eval_path) << "point " << pt.index;
  }
}

TEST(PackedLibrary, LintRulesRq2Rq3) {
  auto spec = make_gen_spec(cifar10_like_spec(), ExperimentScale::tiny());

  spec.eval_path = "sideways";
  auto report = lint_gen_spec(spec);
  EXPECT_TRUE(report.has_errors());
  EXPECT_NE(report.error_message().find("RQ2"), std::string::npos);

  spec.eval_path = "auto";
  ::setenv("ADAPEX_PACKED", "banana", 1);
  report = lint_gen_spec(spec);
  EXPECT_TRUE(report.has_errors());
  EXPECT_NE(report.error_message().find("RQ3"), std::string::npos);

  // Spec/environment contradiction: valid but surfaced as an RQ2 warning.
  spec.eval_path = "float";
  ::setenv("ADAPEX_PACKED", "1", 1);
  report = lint_gen_spec(spec);
  EXPECT_FALSE(report.has_errors());
  bool warned = false;
  for (const auto& f : report.diagnostics) {
    if (f.rule_id == "RQ2") warned = true;
  }
  EXPECT_TRUE(warned);
  ::unsetenv("ADAPEX_PACKED");

  spec.eval_path = "auto";
  report = lint_gen_spec(spec);
  for (const auto& f : report.diagnostics) {
    EXPECT_NE(f.rule_id.substr(0, 2), "RQ") << f.message;
  }
}

}  // namespace
}  // namespace adapex
