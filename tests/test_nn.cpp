// Unit tests for layers, quantization, the branched model, the optimizer,
// and training convergence on a tiny synthetic problem.

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "model/cnv.hpp"
#include "nn/branchy.hpp"
#include "nn/eval.hpp"
#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "nn/quant.hpp"
#include "nn/trainer.hpp"

namespace adapex {
namespace {

TEST(Quant, SignedQmax) {
  EXPECT_EQ(signed_qmax(2), 1);
  EXPECT_EQ(signed_qmax(3), 3);
  EXPECT_EQ(signed_qmax(8), 127);
  EXPECT_THROW(signed_qmax(1), Error);
}

TEST(Quant, TwoBitWeightsTakeThreeLevels) {
  Rng rng(1);
  Tensor w({4, 10});
  w.randn_(rng, 1.0f);
  Tensor q;
  quantize_weight_per_channel(w, 2, q);
  // Per channel (TWN ternary): values must be in {-a, 0, +a} for one a > 0,
  // with signs matching the latent weights and both zero and non-zero
  // entries present for a Gaussian tensor.
  for (int r = 0; r < 4; ++r) {
    float a = 0.0f;
    int zeros = 0, nonzeros = 0;
    for (int i = 0; i < 10; ++i) {
      const float v = q.at2(r, i);
      if (std::abs(v) < 1e-9f) {
        ++zeros;
        continue;
      }
      ++nonzeros;
      if (a == 0.0f) a = std::abs(v);
      EXPECT_NEAR(std::abs(v), a, 1e-5f) << "row " << r;
      EXPECT_GT(v * w.at2(r, i), 0.0f) << "sign flip at row " << r;
    }
    EXPECT_GT(nonzeros, 0) << "row " << r;
  }
}

TEST(Quant, DisabledBitsIsPassthrough) {
  Rng rng(1);
  Tensor w({2, 5});
  w.randn_(rng, 1.0f);
  Tensor q;
  quantize_weight_per_channel(w, 0, q);
  for (std::size_t i = 0; i < w.numel(); ++i) EXPECT_FLOAT_EQ(q[i], w[i]);
}

TEST(Quant, ZeroWeightRowStaysZero) {
  Tensor w({2, 4});
  w.at2(1, 0) = 1.0f;
  Tensor q;
  quantize_weight_per_channel(w, 2, q);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(q.at2(0, i), 0.0f);
  EXPECT_FLOAT_EQ(q.at2(1, 0), 1.0f);
}

TEST(Quant, ActQuantizerLevelsAndRange) {
  ActQuantizer aq(2);
  Tensor x({1, 8});
  for (int i = 0; i < 8; ++i) x.at2(0, i) = -1.0f + 0.4f * i;
  Tensor y = aq.forward(x, /*train=*/true);
  const float s = aq.scale();
  EXPECT_GT(s, 0.0f);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y[i], 0.0f);
    EXPECT_LE(y[i], s + 1e-5f);
    // 2-bit: 4 levels {0, s/3, 2s/3, s}.
    const float level = y[i] / s * 3.0f;
    EXPECT_NEAR(level, std::round(level), 1e-4f);
  }
}

TEST(Quant, ActQuantizerSteMasksOutsideRange) {
  ActQuantizer aq(2);
  Tensor x({1, 3});
  x.at2(0, 0) = -0.5f;  // below 0: blocked
  x.at2(0, 1) = 0.2f;   // inside: passes
  x.at2(0, 2) = 10.0f;  // above scale after first forward: blocked
  aq.forward(x, true);
  Tensor dy({1, 3});
  dy.fill(1.0f);
  Tensor dx = aq.backward(x, dy);
  EXPECT_FLOAT_EQ(dx.at2(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at2(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx.at2(0, 2), 0.0f);
}

TEST(Layers, ConvShapes) {
  Rng rng(1);
  QuantConv2d conv(3, 8, 3, 2, rng);
  Tensor x({2, 3, 10, 10});
  x.randn_(rng, 1.0f);
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 8, 8}));
  EXPECT_EQ(conv.in_channels(), 3);
  EXPECT_EQ(conv.out_channels(), 8);
}

TEST(Layers, BatchNormNormalizesTrainingBatch) {
  Rng rng(4);
  BatchNorm bn(3);
  Tensor x({8, 3, 4, 4});
  x.randn_(rng, 5.0f);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] += 10.0f;
  Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0, sq = 0.0;
    int count = 0;
    for (int n = 0; n < 8; ++n) {
      for (int i = 0; i < 16; ++i) {
        const float v = y.at4(n, c, i / 4, i % 4);
        sum += v;
        sq += static_cast<double>(v) * v;
        ++count;
      }
    }
    EXPECT_NEAR(sum / count, 0.0, 1e-3);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(Layers, BatchNormGradcheck) {
  Rng rng(6);
  BatchNorm bn(2);
  Tensor x({3, 2, 2, 2});
  x.randn_(rng, 1.0f);
  Tensor y = bn.forward(x, true);
  Tensor dy(y.shape());
  dy.randn_(rng, 1.0f);
  Tensor dx = bn.backward(dy);

  const float eps = 1e-3f;
  for (std::size_t i : {0ul, 5ul, 11ul, x.numel() - 1}) {
    const float orig = x[i];
    auto loss = [&]() {
      Tensor out = bn.forward(x, true);
      double l = 0.0;
      for (std::size_t j = 0; j < out.numel(); ++j) {
        l += static_cast<double>(out[j]) * dy[j];
      }
      return l;
    };
    x[i] = orig + eps;
    const double lp = loss();
    x[i] = orig - eps;
    const double lm = loss();
    x[i] = orig;
    bn.forward(x, true);  // restore caches for consistency
    EXPECT_NEAR((lp - lm) / (2 * eps), dx[i], 5e-2) << "at " << i;
  }
}

TEST(Layers, BatchNorm2dAnd1dInputs) {
  Rng rng(8);
  BatchNorm bn(4);
  Tensor x2({5, 4});
  x2.randn_(rng, 1.0f);
  Tensor y2 = bn.forward(x2, true);
  EXPECT_EQ(y2.shape(), x2.shape());
  Tensor x4({5, 4, 3, 3});
  x4.randn_(rng, 1.0f);
  Tensor y4 = bn.forward(x4, true);
  EXPECT_EQ(y4.shape(), x4.shape());
}

TEST(Layers, BatchNormSliceChannels) {
  BatchNorm bn(4);
  bn.slice_channels({1, 3});
  EXPECT_EQ(bn.channels(), 2);
  Rng rng(1);
  Tensor x({2, 2});
  x.randn_(rng, 1.0f);
  EXPECT_NO_THROW(bn.forward(x, false));
}

TEST(Layers, SequentialCloneIsDeep) {
  Rng rng(2);
  auto seq = std::make_unique<Sequential>();
  seq->append(std::make_unique<QuantLinear>(4, 3, 2, rng));
  auto cloned = seq->clone();
  auto* orig_lin = static_cast<QuantLinear*>(&seq->layer(0));
  auto* copy_lin =
      static_cast<QuantLinear*>(&static_cast<Sequential*>(cloned.get())->layer(0));
  copy_lin->weight().value[0] += 100.0f;
  EXPECT_NE(orig_lin->weight().value[0], copy_lin->weight().value[0]);
}

TEST(Branchy, ForwardOutputCountAndShapes) {
  Rng rng(3);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  EXPECT_EQ(model.num_outputs(), 3u);
  Tensor x({2, 3, 32, 32});
  x.randn_(rng, 1.0f);
  auto outs = model.forward(x, false);
  ASSERT_EQ(outs.size(), 3u);
  for (const auto& o : outs) {
    EXPECT_EQ(o.shape(), (std::vector<int>{2, cfg.num_classes}));
  }
}

TEST(Branchy, ExitAfterFinalBlockRejected) {
  Rng rng(3);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  BranchyModel model = build_cnv(cfg, rng);
  auto head = std::make_unique<Sequential>();
  head->append(std::make_unique<Flatten>());
  EXPECT_THROW(model.add_exit(2, std::move(head)), Error);
}

TEST(Branchy, BackwardAccumulatesIntoBackbone) {
  Rng rng(5);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  Tensor x({2, 3, 32, 32});
  x.randn_(rng, 1.0f);
  auto outs = model.forward(x, true);
  std::vector<Tensor> grads;
  for (const auto& o : outs) {
    Tensor g(o.shape());
    g.fill(0.1f);
    grads.push_back(std::move(g));
  }
  model.backward(grads);
  // Every parameter should have received some gradient signal.
  int nonzero_params = 0;
  for (Param* p : model.params()) {
    double mag = 0.0;
    for (std::size_t i = 0; i < p->grad.numel(); ++i) {
      mag += std::abs(p->grad[i]);
    }
    if (mag > 0.0) ++nonzero_params;
  }
  EXPECT_GT(nonzero_params, 10);
}

TEST(Optim, SgdStepMovesAgainstGradient) {
  Param p;
  p.value = Tensor({2});
  p.value[0] = 1.0f;
  p.value[1] = -1.0f;
  p.ensure_grad();
  Sgd opt({&p}, {0.1, 0.0, 0.0});
  p.grad[0] = 1.0f;
  p.grad[1] = -1.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.9f);
  EXPECT_FLOAT_EQ(p.value[1], -0.9f);
  // Gradients zeroed after the step.
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(Optim, MomentumAccumulates) {
  Param p;
  p.value = Tensor({1});
  p.ensure_grad();
  Sgd opt({&p}, {1.0, 0.9, 0.0});
  p.grad[0] = 1.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad[0] = 1.0f;
  opt.step();  // velocity = 0.9*1 + 1 = 1.9
  EXPECT_FLOAT_EQ(p.value[0], -2.9f);
}

TEST(Trainer, ResolveExitWeightsDefaults) {
  TrainConfig cfg;
  auto w3 = resolve_exit_weights(cfg, 3);
  ASSERT_EQ(w3.size(), 3u);
  EXPECT_DOUBLE_EQ(w3[0], 1.0);
  EXPECT_DOUBLE_EQ(w3[1], 0.3);
  EXPECT_DOUBLE_EQ(w3[2], 0.3);
  auto w1 = resolve_exit_weights(cfg, 1);
  EXPECT_DOUBLE_EQ(w1[0], 1.0);
}

TEST(Trainer, ExplicitWeightsMustMatchArity) {
  TrainConfig cfg;
  cfg.exit_weights = {1.0, 0.5};
  EXPECT_THROW(resolve_exit_weights(cfg, 3), Error);
}

// Training convergence: a tiny CNV on an easy synthetic dataset must get
// well above chance within a few epochs. This is the keystone test for the
// whole QAT substrate.
TEST(Trainer, TinyCnvLearnsSyntheticData) {
  SyntheticSpec spec = cifar10_like_spec();
  spec.train_size = 200;
  spec.test_size = 100;
  spec.noise_max = 0.5;
  SyntheticDataset data = make_synthetic(spec);

  Rng rng(42);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  cfg.num_classes = spec.num_classes;
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);

  TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 16;
  // W2A2 QAT at this reduced scale needs a higher lr than the paper's full
  // scale 1e-3 (see DESIGN.md scale calibration).
  tc.lr = 1e-2;
  auto history = train_model(model, data.train, spec.flip_symmetry, tc);
  ASSERT_EQ(history.size(), 10u);
  EXPECT_LT(history.back().joint_loss, history.front().joint_loss);

  auto eval = evaluate_exits(model, data.test);
  auto stats = apply_threshold(eval, 0.0);  // threshold 0: earliest exit wins
  auto stats_final = apply_threshold(eval, 1.01);  // impossible: final exit
  // Final exit must beat chance (10%) comfortably.
  EXPECT_GT(stats_final.accuracy, 0.35);
  // All samples exit at the first exit for threshold 0.
  EXPECT_DOUBLE_EQ(stats.exit_fraction.front(), 1.0);
  EXPECT_DOUBLE_EQ(stats_final.exit_fraction.back(), 1.0);
}

TEST(Eval, ThresholdMonotonicExitFractions) {
  // Synthetic records: 2 exits; confidence at exit0 varies.
  ExitEvaluation eval;
  for (int i = 0; i < 10; ++i) {
    eval.confidence.push_back({0.1f * i, 1.0f});
    eval.correct.push_back({1, 1});
  }
  double prev_fraction = 1.1;
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    auto stats = apply_threshold(eval, t);
    EXPECT_LE(stats.exit_fraction[0], prev_fraction + 1e-12);
    prev_fraction = stats.exit_fraction[0];
  }
}

TEST(Eval, ThresholdOutOfRangeThrows) {
  ExitEvaluation eval;
  eval.confidence.push_back({0.5f, 1.0f});
  eval.correct.push_back({1, 1});
  EXPECT_THROW(apply_threshold(eval, -0.1), Error);
  // Above 1.0 is allowed: it disables early exits.
  auto stats = apply_threshold(eval, 1.5);
  EXPECT_DOUBLE_EQ(stats.exit_fraction.back(), 1.0);
}

}  // namespace
}  // namespace adapex
