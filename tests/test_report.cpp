// Tests for the synthesis report and the experiment-scale presets.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/scale.hpp"
#include "finn/report.hpp"
#include "model/cnv.hpp"

namespace adapex {
namespace {

Accelerator make_acc() {
  Rng rng(41);
  CnvConfig cfg = CnvConfig{}.scaled(0.25);
  static BranchyModel model;
  model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  return compile_accelerator(model, styled_folding(sites), AcceleratorConfig{});
}

TEST(Report, SummaryFieldsConsistent) {
  Accelerator acc = make_acc();
  SynthesisReport report = synthesis_report(acc);
  EXPECT_EQ(report.part, "xczu7ev");
  EXPECT_EQ(report.used.lut, acc.total.lut);
  EXPECT_TRUE(report.fits);  // reduced-scale design fits a ZCU104 easily
  EXPECT_GT(report.lut_pct, 0.0);
  EXPECT_LT(report.lut_pct, 100.0);
  EXPECT_GT(report.peak_ips, 0.0);
  EXPECT_GT(report.latency_ms, 0.0);
  EXPECT_FALSE(report.critical_module.empty());
  // Critical module is a real module with max cycles.
  long max_cycles = 0;
  for (const auto& m : acc.modules) max_cycles = std::max(max_cycles, m.cycles);
  EXPECT_EQ(report.critical_cycles, max_cycles);
}

TEST(Report, TextAndJsonRenderings) {
  Accelerator acc = make_acc();
  SynthesisReport report = synthesis_report(acc);
  EXPECT_NE(report.text.find("Synthesis report"), std::string::npos);
  EXPECT_NE(report.text.find("Critical module"), std::string::npos);
  Json j = report.to_json();
  EXPECT_EQ(j.at("part").as_string(), "xczu7ev");
  EXPECT_TRUE(j.at("fits").as_bool());
  EXPECT_DOUBLE_EQ(j.at("peak_ips").as_number(), report.peak_ips);
}

TEST(Report, TightBudgetFlagsOverflow) {
  Accelerator acc = make_acc();
  DeviceBudget tiny;
  tiny.part = "toy";
  tiny.lut = 10;
  SynthesisReport report = synthesis_report(acc, tiny);
  EXPECT_FALSE(report.fits);
  EXPECT_NE(report.text.find("DOES NOT FIT"), std::string::npos);
}

TEST(Scale, PresetsAreOrdered) {
  auto tiny = ExperimentScale::tiny();
  auto small = ExperimentScale::small_scale();
  auto medium = ExperimentScale::medium();
  auto paper = ExperimentScale::paper();
  EXPECT_LT(tiny.width_scale, small.width_scale);
  EXPECT_LT(small.width_scale, medium.width_scale);
  EXPECT_DOUBLE_EQ(paper.width_scale, 1.0);
  EXPECT_LT(tiny.train_size, paper.train_size);
  EXPECT_DOUBLE_EQ(paper.lr, 1e-3);  // the paper's recipe
  EXPECT_EQ(paper.initial_epochs, 40);
}

TEST(Scale, FromEnvParses) {
  setenv("ADAPEX_SCALE", "medium", 1);
  EXPECT_EQ(ExperimentScale::from_env().name, "medium");
  setenv("ADAPEX_SCALE", "bogus", 1);
  EXPECT_THROW(ExperimentScale::from_env(), ConfigError);
  unsetenv("ADAPEX_SCALE");
  EXPECT_EQ(ExperimentScale::from_env().name, "small");
}

TEST(Scale, GenSpecClassAwareSizing) {
  auto scale = ExperimentScale::small_scale();
  auto cifar = make_gen_spec(cifar10_like_spec(), scale);
  auto gtsrb = make_gen_spec(gtsrb_like_spec(), scale);
  EXPECT_EQ(cifar.dataset.train_size, scale.train_size);
  EXPECT_EQ(gtsrb.dataset.train_size, 2 * scale.train_size);
  EXPECT_GT(gtsrb.initial_train.epochs, cifar.initial_train.epochs);
  EXPECT_EQ(cifar.cnv.num_classes, 10);
  EXPECT_EQ(gtsrb.cnv.num_classes, 43);
  // Paper sweeps installed.
  EXPECT_EQ(cifar.prune_rates_pct.size(), 18u);
  EXPECT_EQ(cifar.conf_thresholds_pct.size(), 21u);
}

}  // namespace
}  // namespace adapex
