// Tests for the fault-injection subsystem and the self-healing Runtime
// Manager: injector determinism and stream independence, the backoff
// schedule, degraded-mode search, the edge watchdog, validation, and
// byte-identical faulted episodes at a fixed seed.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "edge/simulation.hpp"
#include "runtime/faults.hpp"
#include "runtime/manager.hpp"

namespace adapex {
namespace {

LibraryEntry entry(int accel, ModelVariant v, int rate, int ct, double acc,
                   double ips, double lat_ms, double power_w, double e_j) {
  LibraryEntry e;
  e.accel_id = accel;
  e.variant = v;
  e.prune_rate_pct = rate;
  e.conf_threshold_pct = ct;
  e.accuracy = acc;
  e.exit_fractions = v == ModelVariant::kNoExit
                         ? std::vector<double>{1.0}
                         : std::vector<double>{0.5, 0.5};
  e.ips = ips;
  e.latency_ms = lat_ms;
  e.peak_power_w = power_w;
  e.energy_per_inf_j = e_j;
  return e;
}

/// Same controlled library as test_runtime.cpp: reference accuracy 0.90.
Library controlled_library() {
  Library lib;
  lib.dataset = "controlled";
  lib.reference_accuracy = 0.90;
  lib.static_power_w = 0.7;
  for (int id = 0; id < 4; ++id) {
    AcceleratorRecord a;
    a.id = id;
    a.variant = id < 2 ? ModelVariant::kNoExit : ModelVariant::kNotPrunedExits;
    a.prune_rate_pct = (id % 2) * 50;
    a.reconfig_ms = 145.0;
    lib.accelerators.push_back(a);
  }
  lib.entries = {
      entry(0, ModelVariant::kNoExit, 0, -1, 0.90, 100, 6.0, 1.16, 0.006),
      entry(1, ModelVariant::kNoExit, 50, -1, 0.70, 300, 2.0, 1.00, 0.002),
      entry(2, ModelVariant::kNotPrunedExits, 0, 50, 0.88, 120, 5.0, 1.35,
            0.005),
      entry(2, ModelVariant::kNotPrunedExits, 0, 5, 0.84, 200, 3.0, 1.30,
            0.004),
      entry(3, ModelVariant::kNotPrunedExits, 50, 50, 0.82, 350, 1.8, 1.20,
            0.002),
      entry(3, ModelVariant::kNotPrunedExits, 50, 5, 0.78, 500, 1.2, 1.18,
            0.0015),
  };
  return lib;
}

FaultSpec mixed_faults() {
  FaultSpec f;
  f.reconfig_fail_prob = 0.30;
  f.reconfig_slow_prob = 0.20;
  f.reconfig_slow_factor = 3.0;
  f.stall_prob = 0.05;
  f.stall_duration_s = 0.8;
  f.monitor_drop_prob = 0.10;
  f.monitor_delay_prob = 0.10;
  return f;
}

/// Overloaded oscillating scenario that forces repeated reconfigurations.
EdgeScenario oscillating_scenario(std::uint64_t seed) {
  EdgeScenario sc;
  sc.cameras = 20;
  sc.ips_per_camera = 12.0;  // 240 ips: needs accel 3; deviation dips below
  sc.deviation = 0.6;
  sc.seed = seed;
  return sc;
}

bool traces_equal(const std::vector<TracePoint>& a,
                  const std::vector<TracePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time_s != b[i].time_s || a[i].measured_ips != b[i].measured_ips ||
        a[i].prune_rate_pct != b[i].prune_rate_pct ||
        a[i].conf_threshold_pct != b[i].conf_threshold_pct ||
        a[i].entry_accuracy != b[i].entry_accuracy ||
        a[i].reconfigured != b[i].reconfigured ||
        a[i].health != b[i].health ||
        a[i].reconfig_failed != b[i].reconfig_failed ||
        a[i].degraded != b[i].degraded ||
        a[i].watchdog_fired != b[i].watchdog_fired) {
      return false;
    }
  }
  return true;
}

TEST(FaultInjector, DeterministicPerSeed) {
  const FaultSpec f = mixed_faults();
  FaultInjector a(f, 42), b(f, 42), c(f, 43);
  bool differs_from_c = false;
  for (int i = 0; i < 200; ++i) {
    const auto oa = a.attempt_reconfig(145.0);
    const auto ob = b.attempt_reconfig(145.0);
    const auto oc = c.attempt_reconfig(145.0);
    EXPECT_EQ(oa.success, ob.success);
    EXPECT_EQ(oa.slowed, ob.slowed);
    EXPECT_DOUBLE_EQ(oa.dead_ms, ob.dead_ms);
    if (oa.success != oc.success || oa.slowed != oc.slowed) {
      differs_from_c = true;
    }
    EXPECT_EQ(a.draw_stall(), b.draw_stall());
    EXPECT_EQ(a.draw_monitor_drop(), b.draw_monitor_drop());
    EXPECT_EQ(a.draw_monitor_delay(), b.draw_monitor_delay());
  }
  EXPECT_TRUE(differs_from_c);  // different seeds give different streams
}

TEST(FaultInjector, CategoryStreamsAreIndependent) {
  // Raising the stall probability (and drawing stalls at a different
  // cadence) must not perturb the reconfiguration-failure sequence.
  FaultSpec quiet = mixed_faults();
  quiet.stall_prob = 0.0;
  FaultSpec noisy = mixed_faults();
  noisy.stall_prob = 0.9;
  FaultInjector a(quiet, 7), b(noisy, 7);
  for (int i = 0; i < 200; ++i) {
    if (i % 3 == 0) {
      (void)a.draw_stall();
      // b draws stalls far more often than a.
      (void)b.draw_stall();
      (void)b.draw_stall();
      (void)b.draw_stall();
    }
    const auto oa = a.attempt_reconfig(100.0);
    const auto ob = b.attempt_reconfig(100.0);
    EXPECT_EQ(oa.success, ob.success) << "attempt " << i;
    EXPECT_EQ(oa.slowed, ob.slowed) << "attempt " << i;
  }
}

TEST(FaultInjector, ValidationAggregatesEveryViolation) {
  FaultSpec f;
  f.reconfig_fail_prob = 1.5;
  f.monitor_drop_prob = -0.2;
  f.reconfig_slow_factor = 0.5;
  f.stall_duration_s = -1.0;
  try {
    require_valid_fault_spec(f);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("reconfig_fail_prob"), std::string::npos);
    EXPECT_NE(msg.find("monitor_drop_prob"), std::string::npos);
    EXPECT_NE(msg.find("reconfig_slow_factor"), std::string::npos);
    EXPECT_NE(msg.find("stall_duration_s"), std::string::npos);
  }
  EXPECT_NO_THROW(require_valid_fault_spec(mixed_faults()));
}

TEST(FaultInjector, SeuLintRejectsBadRatesAndSeverities) {
  // RF4: SEU probabilities and severities must be sane rates.
  FaultSpec f;
  f.seu_weight_prob = 1.5;
  f.seu_config_prob = -0.1;
  f.seu_weight_accuracy_drop = 2.0;
  f.seu_exit_rate_shift = -0.5;
  f.seu_hang_frac = 0.8;
  f.seu_exit_corrupt_frac = 0.5;  // fractions sum to 1.3 > 1
  try {
    require_valid_fault_spec(f);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("seu_weight_prob"), std::string::npos);
    EXPECT_NE(msg.find("seu_config_prob"), std::string::npos);
    EXPECT_NE(msg.find("seu_weight_accuracy_drop"), std::string::npos);
    EXPECT_NE(msg.find("seu_exit_rate_shift"), std::string::npos);
    EXPECT_NE(msg.find("RF4"), std::string::npos);
  }
}

TEST(FaultInjector, SeuLintChecksScrubScheduleAndTmrTargets) {
  // RF5: an enabled scrubber needs a sane schedule.
  FaultSpec f;
  f.mitigation.scrubbing = true;
  f.mitigation.scrub_period_s = 0.0;
  f.mitigation.scrub_time_ms = -1.0;
  const auto r5 = lint_fault_spec(f);
  EXPECT_TRUE(r5.has_errors());
  EXPECT_NE(r5.error_message().find("scrub_period_s"), std::string::npos);
  EXPECT_NE(r5.error_message().find("scrub_time_ms"), std::string::npos);

  // RF6: TMR on exit heads requires a library with early-exit entries.
  FaultSpec tmr;
  tmr.mitigation.tmr_exit_heads = true;
  Library no_exits;
  no_exits.dataset = "no-exits";
  no_exits.reference_accuracy = 0.9;
  no_exits.entries = {
      entry(0, ModelVariant::kNoExit, 0, -1, 0.90, 100, 6.0, 1.16, 0.006)};
  const auto r6 = lint_fault_spec(tmr, no_exits);
  EXPECT_TRUE(r6.has_errors());
  EXPECT_NE(r6.error_message().find("RF6"), std::string::npos);
  // With exit heads present the same spec is fine.
  EXPECT_FALSE(lint_fault_spec(tmr, controlled_library()).has_errors());
  // The library-blind overload cannot check RF6 and stays quiet.
  EXPECT_FALSE(lint_fault_spec(tmr).has_errors());
}

TEST(RuntimePolicyValidation, DriftPolicyLintedAsRp9ToRp11) {
  RuntimePolicy p;
  p.drift.window = 0;
  p.drift.accuracy_tolerance = 0.0;
  p.drift.exit_rate_tolerance = 1.5;
  try {
    require_valid_runtime_policy(p);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("drift.window"), std::string::npos);
    EXPECT_NE(msg.find("drift.accuracy_tolerance"), std::string::npos);
    EXPECT_NE(msg.find("drift.exit_rate_tolerance"), std::string::npos);
  }
  RuntimePolicy q;
  q.drift.min_samples = q.drift.window + 1;
  EXPECT_TRUE(lint_runtime_policy(q).has_errors());
}

TEST(RuntimePolicyValidation, RejectsBadFieldsAggregated) {
  RuntimePolicy p;
  p.max_accuracy_loss = 1.7;
  p.ips_headroom = -1.0;
  p.backoff.multiplier = 0.5;
  p.backoff.jitter = 1.5;
  try {
    require_valid_runtime_policy(p);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("max_accuracy_loss"), std::string::npos);
    EXPECT_NE(msg.find("ips_headroom"), std::string::npos);
    EXPECT_NE(msg.find("backoff.multiplier"), std::string::npos);
    EXPECT_NE(msg.find("backoff.jitter"), std::string::npos);
  }
  const Library lib = controlled_library();
  EXPECT_THROW(RuntimeManager(lib, p), ConfigError);
  EXPECT_NO_THROW(RuntimeManager(lib, RuntimePolicy{}));
}

TEST(EdgeScenarioValidation, RejectsBadFieldsAggregated) {
  const Library lib = controlled_library();
  EdgeScenario sc;
  sc.cameras = -3;
  sc.sample_period_s = 0.0;
  sc.queue_capacity = 0;
  sc.faults.stall_prob = 2.0;
  try {
    simulate_edge(lib, RuntimePolicy{}, sc);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cameras"), std::string::npos);
    EXPECT_NE(msg.find("sample_period_s"), std::string::npos);
    EXPECT_NE(msg.find("queue_capacity"), std::string::npos);
    EXPECT_NE(msg.find("stall_prob"), std::string::npos);
  }
  EXPECT_NO_THROW(require_valid_edge_scenario(EdgeScenario{}));
}

TEST(RuntimeManager, CurrentBeforeFirstSelectFailsClearly) {
  const Library lib = controlled_library();
  RuntimeManager mgr(lib, {AdaptPolicy::kAdaPEx, 0.10});
  EXPECT_FALSE(mgr.has_selection());
  try {
    (void)mgr.current();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("before the first select()"),
              std::string::npos);
  }
  mgr.select(50.0);
  EXPECT_TRUE(mgr.has_selection());
  EXPECT_DOUBLE_EQ(mgr.current().accuracy, 0.88);
}

TEST(RuntimeManager, DecisionCarriesAttemptedIndexOnFailure) {
  const Library lib = controlled_library();
  RuntimeManager mgr(lib, {AdaptPolicy::kAdaPEx, 0.10});
  mgr.select(50.0, 0.0);  // accel 2
  Decision d = mgr.select(300.0, 1.0);  // wants accel 3
  ASSERT_TRUE(d.reconfigure);
  EXPECT_EQ(d.state, HealthState::kReconfigPending);
  const int attempted = d.attempted_index;
  EXPECT_EQ(lib.entries[static_cast<std::size_t>(attempted)].accel_id, 3);
  mgr.complete_reconfig(false, 1.0);
  // Rolled back to the loaded bitstream; the attempted target stays on
  // record in the decision.
  EXPECT_EQ(mgr.current().accel_id, 2);
  EXPECT_EQ(mgr.state(), HealthState::kBackoff);
  EXPECT_EQ(mgr.consecutive_failures(), 1);
  EXPECT_EQ(d.attempted_index, attempted);
}

TEST(RuntimeManager, BackoffScheduleCapsAndJitterBounds) {
  const Library lib = controlled_library();
  RuntimePolicy p{AdaptPolicy::kAdaPEx, 0.10};
  p.backoff.initial_s = 1.0;
  p.backoff.multiplier = 2.0;
  p.backoff.max_s = 4.0;
  p.backoff.jitter = 0.25;
  p.backoff.degrade_after = 100;  // keep it in kBackoff for this test
  RuntimeManager mgr(lib, p, /*seed=*/5);
  mgr.select(50.0, 0.0);  // accel 2

  double now = 0.0;
  double prev_nominal = 0.0;
  for (int failure = 1; failure <= 6; ++failure) {
    Decision d = mgr.select(300.0, now);  // retries want accel 3
    ASSERT_TRUE(d.reconfigure) << "failure " << failure;
    EXPECT_EQ(d.retry, failure > 1);
    mgr.complete_reconfig(false, now);
    const double delay = mgr.next_retry_s() - now;
    const double nominal =
        std::min(p.backoff.initial_s *
                     std::pow(p.backoff.multiplier, failure - 1),
                 p.backoff.max_s);
    EXPECT_GE(delay, nominal * (1.0 - p.backoff.jitter) - 1e-12);
    EXPECT_LE(delay, nominal * (1.0 + p.backoff.jitter) + 1e-12);
    EXPECT_GE(nominal, prev_nominal);  // schedule grows until the cap
    EXPECT_LE(nominal, p.backoff.max_s + 1e-12);
    prev_nominal = nominal;
    now = mgr.next_retry_s();
  }
  // A successful retry resets the schedule.
  Decision d = mgr.select(300.0, now);
  ASSERT_TRUE(d.reconfigure);
  mgr.complete_reconfig(true, now);
  EXPECT_EQ(mgr.state(), HealthState::kHealthy);
  EXPECT_EQ(mgr.consecutive_failures(), 0);
  EXPECT_DOUBLE_EQ(mgr.next_retry_s(), 0.0);
  EXPECT_EQ(mgr.current().accel_id, 3);
}

TEST(RuntimeManager, RepeatedFailuresLatchDegradedWithCooldownProbes) {
  const Library lib = controlled_library();
  RuntimePolicy p{AdaptPolicy::kAdaPEx, 0.10};
  p.backoff.initial_s = 0.5;
  p.backoff.degrade_after = 2;
  p.backoff.probe_cooldown_s = 10.0;
  RuntimeManager mgr(lib, p, 9);
  mgr.select(50.0, 0.0);
  double now = 0.0;
  for (int i = 0; i < 2; ++i) {
    Decision d = mgr.select(300.0, now);
    ASSERT_TRUE(d.reconfigure);
    mgr.complete_reconfig(false, now);
    now = mgr.next_retry_s();
  }
  EXPECT_EQ(mgr.state(), HealthState::kDegraded);
  // Before the cooldown expires only degraded (restricted) decisions.
  Decision held = mgr.select(300.0, now - 5.0);
  EXPECT_TRUE(held.degraded);
  EXPECT_FALSE(held.reconfigure);
  EXPECT_EQ(mgr.state(), HealthState::kDegraded);
  // The cooldown-gated probe goes through and can succeed.
  Decision probe = mgr.select(300.0, now);
  ASSERT_TRUE(probe.reconfigure);
  EXPECT_TRUE(probe.retry);
  mgr.complete_reconfig(true, now);
  EXPECT_EQ(mgr.state(), HealthState::kHealthy);
}

TEST(RuntimeManager, DegradedSearchIsCtOnlyOnTheActiveBitstream) {
  const Library lib = controlled_library();
  RuntimeManager mgr(lib, {AdaptPolicy::kAdaPEx, 0.10});
  mgr.select(50.0, 0.0);  // accel 2 (ct 50)
  Decision d = mgr.select(300.0, 0.0);
  ASSERT_TRUE(d.reconfigure);
  mgr.complete_reconfig(false, 0.0);

  // While backing off, the search may only move the confidence threshold on
  // the loaded bitstream: among accel-2 entries at workload 300 nothing is
  // feasible, so best effort picks the fastest accuracy-OK point — ct 5.
  Decision deg = mgr.select(300.0, 0.01);
  EXPECT_TRUE(deg.degraded);
  EXPECT_FALSE(deg.reconfigure);
  EXPECT_EQ(mgr.current().accel_id, 2);
  EXPECT_EQ(mgr.current().conf_threshold_pct, 5);
  EXPECT_EQ(mgr.current().prune_rate_pct, 0);  // pruning rate never moves

  // The degraded choice matches CT-Only's choice restricted to the active
  // pruning rate (accel 2 is exactly the CT-Only search space here).
  RuntimeManager ct(lib, {AdaptPolicy::kCtOnly, 0.10});
  ct.select(300.0, 0.0);
  EXPECT_EQ(mgr.current().accel_id, ct.current().accel_id);
  EXPECT_EQ(mgr.current().conf_threshold_pct, ct.current().conf_threshold_pct);
}

TEST(RuntimeManager, FailureBecomesMootWhenWorkloadRecedes) {
  const Library lib = controlled_library();
  RuntimePolicy p{AdaptPolicy::kAdaPEx, 0.10};
  p.backoff.initial_s = 0.5;
  RuntimeManager mgr(lib, p, 3);
  mgr.select(50.0, 0.0);
  Decision d = mgr.select(300.0, 0.0);
  ASSERT_TRUE(d.reconfigure);
  mgr.complete_reconfig(false, 0.0);
  EXPECT_EQ(mgr.state(), HealthState::kBackoff);
  // At the retry window the workload is low again: no switch needed, the
  // failure is moot and the manager heals without a reconfiguration.
  Decision healed = mgr.select(50.0, mgr.next_retry_s());
  EXPECT_FALSE(healed.reconfigure);
  EXPECT_EQ(healed.state, HealthState::kHealthy);
  EXPECT_EQ(mgr.consecutive_failures(), 0);
}

TEST(EdgeSimFaults, ZeroProbabilityEpisodesMatchFaultFreeBehaviour) {
  const Library lib = controlled_library();
  EdgeScenario sc = oscillating_scenario(13);
  // scenario.faults defaults to all-zero: the robustness machinery must be
  // invisible.
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_GT(m.reconfigurations, 0);  // same expectation as test_runtime.cpp
  EXPECT_EQ(m.reconfig_failures, 0);
  EXPECT_EQ(m.reconfig_retries, 0);
  EXPECT_EQ(m.slow_reconfigs, 0);
  EXPECT_EQ(m.stalls, 0);
  EXPECT_EQ(m.monitor_dropped, 0);
  EXPECT_EQ(m.monitor_delayed, 0);
  EXPECT_EQ(m.watchdog_recoveries, 0);
  EXPECT_EQ(m.recoveries, 0);
  EXPECT_DOUBLE_EQ(m.degraded_time_s, 0.0);
  EXPECT_DOUBLE_EQ(m.recovery_latency_s, 0.0);
  for (const auto& tp : m.trace) {
    EXPECT_EQ(tp.health, HealthState::kHealthy);
    EXPECT_FALSE(tp.reconfig_failed);
    EXPECT_FALSE(tp.degraded);
    EXPECT_FALSE(tp.watchdog_fired);
  }
  // Dead time is exactly the successful reconfigurations' dead intervals.
  EXPECT_NEAR(m.dead_time_s, m.reconfigurations * 145.0 / 1e3, 1e-9);
  auto again = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_EQ(m.served, again.served);
  EXPECT_DOUBLE_EQ(m.qoe, again.qoe);
  EXPECT_DOUBLE_EQ(m.energy_j, again.energy_j);
  EXPECT_TRUE(traces_equal(m.trace, again.trace));
}

TEST(EdgeSimFaults, FaultedEpisodesAreDeterministicPerSeed) {
  const Library lib = controlled_library();
  EdgeScenario sc = oscillating_scenario(29);
  sc.faults = mixed_faults();
  auto a = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  auto b = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.reconfig_failures, b.reconfig_failures);
  EXPECT_EQ(a.reconfig_retries, b.reconfig_retries);
  EXPECT_EQ(a.watchdog_recoveries, b.watchdog_recoveries);
  EXPECT_DOUBLE_EQ(a.qoe, b.qoe);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.degraded_time_s, b.degraded_time_s);
  EXPECT_DOUBLE_EQ(a.availability_pct, b.availability_pct);
  EXPECT_TRUE(traces_equal(a.trace, b.trace));
  // The faults actually fired somewhere in the episode.
  EXPECT_GT(a.reconfig_failures + a.stalls + a.monitor_dropped, 0);
  // And a different seed produces a different episode.
  EdgeScenario other = sc;
  other.seed = 31;
  auto c = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, other);
  EXPECT_FALSE(traces_equal(a.trace, c.trace));
}

TEST(EdgeSimFaults, EpisodesAreIdenticalAcrossConcurrentThreads) {
  const Library lib = controlled_library();
  EdgeScenario sc = oscillating_scenario(17);
  sc.faults = mixed_faults();
  const auto serial = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  std::vector<EdgeMetrics> results(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] =
          simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& m : results) {
    EXPECT_EQ(m.served, serial.served);
    EXPECT_DOUBLE_EQ(m.qoe, serial.qoe);
    EXPECT_EQ(m.reconfig_failures, serial.reconfig_failures);
    EXPECT_TRUE(traces_equal(m.trace, serial.trace));
  }
}

TEST(EdgeSimFaults, FailuresDegradeAndRecoverWithObservability) {
  const Library lib = controlled_library();
  EdgeScenario sc = oscillating_scenario(23);
  sc.duration_s = 40.0;
  sc.faults.reconfig_fail_prob = 0.5;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_GT(m.reconfig_failures, 0);
  EXPECT_GT(m.reconfig_retries, 0);
  EXPECT_GT(m.degraded_time_s, 0.0);
  EXPECT_GT(m.recoveries, 0);
  EXPECT_GT(m.recovery_latency_s, 0.0);
  EXPECT_LT(m.availability_pct, 100.0);
  // Degradation keeps serving: the episode still delivers most requests.
  EXPECT_GT(m.served, 0);
  bool saw_degraded_tick = false;
  for (const auto& tp : m.trace) {
    if (tp.health != HealthState::kHealthy) saw_degraded_tick = true;
  }
  EXPECT_TRUE(saw_degraded_tick);
}

TEST(EdgeSimFaults, WatchdogFiresOnWedgedServingAndRecovers) {
  const Library lib = controlled_library();
  EdgeScenario sc = oscillating_scenario(19);
  sc.deviation = 0.3;
  sc.faults.stall_prob = 1.0;       // the accelerator wedges every period
  sc.faults.stall_duration_s = 30.0;
  sc.watchdog_periods = 4;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  // Without the watchdog nothing would be served after the first stall;
  // the forced recoveries keep the episode alive (and terminating).
  EXPECT_GT(m.watchdog_recoveries, 0);
  EXPECT_GT(m.served, 0);
  bool fired_in_trace = false;
  for (const auto& tp : m.trace) fired_in_trace |= tp.watchdog_fired;
  EXPECT_TRUE(fired_in_trace);
  // Serving progressed after the first watchdog recovery.
  double first_fire = -1.0;
  for (const auto& tp : m.trace) {
    if (tp.watchdog_fired) {
      first_fire = tp.time_s;
      break;
    }
  }
  ASSERT_GT(first_fire, 0.0);
  EXPECT_LT(first_fire, sc.duration_s);
}

TEST(EdgeSimFaults, MonitorDropoutFreezesAdaptation) {
  const Library lib = controlled_library();
  EdgeScenario sc = oscillating_scenario(37);
  sc.faults.monitor_drop_prob = 1.0;  // every sample is lost
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_GT(m.monitor_dropped, 0);
  // The manager never hears about the workload: it stays at the initial
  // operating point and never reconfigures.
  EXPECT_EQ(m.reconfigurations, 0);
  for (const auto& tp : m.trace) EXPECT_EQ(tp.prune_rate_pct, 0);
}

TEST(EdgeSimFaults, GracefulDegradationBeatsBlockingRetries) {
  const Library lib = controlled_library();
  EdgeScenario sc = oscillating_scenario(41);
  sc.faults.reconfig_fail_prob = 0.30;
  RuntimePolicy degrade{AdaptPolicy::kAdaPEx, 0.10};
  RuntimePolicy block{AdaptPolicy::kAdaPEx, 0.10};
  block.backoff.on_failure = FailurePolicy::kBlockRetry;
  const auto md = simulate_edge_runs(lib, degrade, sc, 10);
  const auto mb = simulate_edge_runs(lib, block, sc, 10);
  EXPECT_GT(md.qoe, mb.qoe);
  EXPECT_GT(md.availability_pct, mb.availability_pct);
  // Averaged availability is a percentage, not polluted by the struct's
  // 100% default.
  EXPECT_LE(md.availability_pct, 100.0);
  EXPECT_GT(md.availability_pct, 0.0);
}

}  // namespace
}  // namespace adapex
