// Tests for the model walk, folding configuration, and dataflow-aware
// pruning, including property-style sweeps over pruning rates and folds.

#include <gtest/gtest.h>

#include <cmath>

#include "hls/folding.hpp"
#include "model/cnv.hpp"
#include "model/walk.hpp"
#include "pruning/pruning.hpp"

namespace adapex {
namespace {

CnvConfig tiny_cfg() {
  CnvConfig cfg = CnvConfig{}.scaled(0.25);  // 16,16,32,32,64,64; fc 128
  return cfg;
}

TEST(Walk, CnvBackboneLayerList) {
  Rng rng(1);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv(cfg, rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  // 6 convs + 3 fcs.
  ASSERT_EQ(sites.size(), 9u);
  EXPECT_EQ(sites[0].name, "backbone.b0.conv0");
  EXPECT_TRUE(sites[0].is_conv);
  EXPECT_EQ(sites[0].in_channels, 3);
  EXPECT_EQ(sites[0].in_dim, 32);
  EXPECT_EQ(sites[0].out_dim, 30);
  EXPECT_EQ(sites[5].out_dim, 1);  // last conv produces 1x1
  EXPECT_EQ(sites[6].name, "backbone.b2.fc0");
  EXPECT_FALSE(sites[6].is_conv);
  EXPECT_EQ(sites[6].in_channels, cfg.conv_channels[5]);  // 1x1 flatten
  EXPECT_EQ(sites[8].out_channels, cfg.num_classes);
}

TEST(Walk, ExitsAppendAfterBackbone) {
  Rng rng(1);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  // 9 backbone + 2 exits x (conv + 2 fc).
  ASSERT_EQ(sites.size(), 15u);
  EXPECT_EQ(sites[9].name, "exit0.conv0");
  EXPECT_EQ(sites[9].in_dim, 14);   // block 0 output
  EXPECT_EQ(sites[12].name, "exit1.conv0");
  EXPECT_EQ(sites[12].in_dim, 5);   // block 1 output
  // Exit fc input: channels * pooled-dim^2.
  EXPECT_EQ(sites[10].in_channels % sites[9].out_channels, 0);
}

TEST(Folding, LargestDivisor) {
  EXPECT_EQ(largest_divisor_at_most(64, 4), 4);
  EXPECT_EQ(largest_divisor_at_most(3, 4), 3);
  EXPECT_EQ(largest_divisor_at_most(7, 4), 1);
  EXPECT_EQ(largest_divisor_at_most(12, 5), 4);
  EXPECT_THROW(largest_divisor_at_most(0, 4), Error);
}

TEST(Folding, DefaultFoldingValidates) {
  Rng rng(2);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  auto folding = default_folding(sites);
  EXPECT_NO_THROW(validate_folding(sites, folding));
}

TEST(Folding, JsonRoundTrip) {
  Rng rng(2);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv(cfg, rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  auto folding = default_folding(sites, 8, 8);
  Json j = folding.to_json(sites);
  auto parsed = FoldingConfig::from_json(Json::parse(j.dump()), sites);
  ASSERT_EQ(parsed.folds.size(), folding.folds.size());
  for (std::size_t i = 0; i < folding.folds.size(); ++i) {
    EXPECT_EQ(parsed.folds[i].pe, folding.folds[i].pe);
    EXPECT_EQ(parsed.folds[i].simd, folding.folds[i].simd);
  }
}

TEST(Folding, InvalidPeRejected) {
  Rng rng(2);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv(cfg, rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  auto folding = default_folding(sites);
  folding.folds[0].pe = 5;  // 16 % 5 != 0
  EXPECT_THROW(validate_folding(sites, folding), ConfigError);
}

TEST(Pruning, L1RankingPicksSmallestFilters) {
  Rng rng(3);
  QuantConv2d conv(2, 4, 3, 0, rng);
  // Overwrite weights: filter f has magnitude f+1 everywhere.
  Tensor w({4, 2, 3, 3});
  for (int f = 0; f < 4; ++f) {
    for (int i = 0; i < 18; ++i) {
      w[static_cast<std::size_t>(f) * 18 + i] = static_cast<float>(f + 1);
    }
  }
  conv.set_weight(std::move(w));
  auto norms = filter_l1_norms(conv);
  EXPECT_FLOAT_EQ(norms[0], 18.0f);
  EXPECT_FLOAT_EQ(norms[3], 72.0f);
  auto lowest = lowest_l1_filters(conv, 2);
  ASSERT_EQ(lowest.size(), 2u);
  EXPECT_EQ(lowest[0], 0);
  EXPECT_EQ(lowest[1], 1);
}

TEST(Pruning, ZeroRateIsIdentity) {
  Rng rng(4);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  PruneOptions opts;
  opts.rate = 0.0;
  opts.folding = default_folding(sites);
  auto report = prune_model(model, opts);
  EXPECT_DOUBLE_EQ(report.achieved_rate, 0.0);
  for (const auto& l : report.layers) EXPECT_EQ(l.removed, 0);
}

TEST(Pruning, PrunedModelStillRuns) {
  Rng rng(5);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  PruneOptions opts;
  opts.rate = 0.5;
  opts.folding = default_folding(sites);
  auto report = prune_model(model, opts);
  EXPECT_GT(report.achieved_rate, 0.2);
  Tensor x({2, 3, 32, 32});
  x.randn_(rng, 1.0f);
  auto outs = model.forward(x, false);
  ASSERT_EQ(outs.size(), 3u);
  for (const auto& o : outs) {
    EXPECT_EQ(o.shape(), (std::vector<int>{2, cfg.num_classes}));
    for (std::size_t i = 0; i < o.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(o[i]));
    }
  }
}

TEST(Pruning, ExitsUntouchedWhenFlagOff) {
  Rng rng(6);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  PruneOptions opts;
  opts.rate = 0.5;
  opts.prune_exits = false;
  opts.folding = default_folding(sites);
  auto report = prune_model(model, opts);
  for (const auto& l : report.layers) {
    EXPECT_TRUE(l.name.rfind("exit", 0) != 0) << l.name;
  }
  // Exit conv filter counts unchanged.
  auto pruned_sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  for (const auto& s : pruned_sites) {
    if (s.loc == SiteLoc::kExit && s.is_conv) {
      EXPECT_EQ(s.out_channels, cnv_block_out_channels(cfg)[static_cast<std::size_t>(
                                    model.exit(static_cast<std::size_t>(s.group))
                                        .after_block)]);
    }
  }
}

TEST(Pruning, ExitsPrunedWhenFlagOn) {
  Rng rng(7);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(true), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  PruneOptions opts;
  opts.rate = 0.5;
  opts.prune_exits = true;
  opts.folding = default_folding(sites);
  auto report = prune_model(model, opts);
  bool pruned_an_exit = false;
  for (const auto& l : report.layers) {
    if (l.name.rfind("exit", 0) == 0 && l.removed > 0) pruned_an_exit = true;
  }
  EXPECT_TRUE(pruned_an_exit);
  Tensor x({1, 3, 32, 32});
  x.randn_(rng, 1.0f);
  EXPECT_NO_THROW(model.forward(x, false));
}

TEST(Pruning, RateOutOfRangeThrows) {
  Rng rng(8);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv(cfg, rng);
  PruneOptions opts;
  opts.rate = 1.0;
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  opts.folding = default_folding(sites);
  EXPECT_THROW(prune_model(model, opts), Error);
}

// Property sweep: for every pruning rate and several fold caps, the pruned
// model must keep the user folding valid and still execute — the central
// dataflow-aware-pruning guarantee.
class PruningSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PruningSweep, FoldingStaysValidAndModelRuns) {
  const int rate_pct = std::get<0>(GetParam());
  const int cap = std::get<1>(GetParam());
  Rng rng(100 + static_cast<std::uint64_t>(rate_pct) * 7 +
          static_cast<std::uint64_t>(cap));
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(true), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  PruneOptions opts;
  opts.rate = rate_pct / 100.0;
  opts.prune_exits = (rate_pct % 10) == 5;  // exercise both paths
  opts.folding = default_folding(sites, cap, cap);
  // prune_model internally re-validates folding post-surgery; a throw here
  // fails the test.
  auto report = prune_model(model, opts);
  EXPECT_LE(report.achieved_rate, opts.rate + 1e-9);
  Tensor x({1, 3, 32, 32});
  x.randn_(rng, 1.0f);
  auto outs = model.forward(x, false);
  EXPECT_EQ(outs.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndCaps, PruningSweep,
    ::testing::Combine(::testing::Values(0, 5, 15, 25, 35, 45, 55, 65, 75, 85),
                       ::testing::Values(2, 4, 8)));

// Paper constraint, stated directly: remaining channels divisible by PE and
// by each consumer's SIMD.
TEST(Pruning, RemainingChannelsSatisfyPaperConstraints) {
  Rng rng(9);
  CnvConfig cfg = tiny_cfg();
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  auto folding = default_folding(sites);
  PruneOptions opts;
  opts.rate = 0.6;
  opts.folding = folding;
  prune_model(model, opts);
  auto pruned = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  ASSERT_EQ(pruned.size(), sites.size());
  for (std::size_t i = 0; i < pruned.size(); ++i) {
    EXPECT_EQ(pruned[i].out_channels % folding.folds[i].pe, 0) << pruned[i].name;
    EXPECT_EQ(pruned[i].in_channels % folding.folds[i].simd, 0) << pruned[i].name;
  }
}

}  // namespace
}  // namespace adapex
