// Tests for the static design verifier (analysis/lint.hpp): one
// deliberately-broken fixture per rule R1..R7, asserting the rule ID and
// the anchoring site, plus clean-model runs asserting zero error-severity
// findings across the experiment scales.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "analysis/lint.hpp"
#include "core/scale.hpp"
#include "model/cnv.hpp"

namespace adapex {
namespace {

using analysis::Diagnostic;
using analysis::LintOptions;
using analysis::LintReport;
using analysis::Severity;

bool has_finding(const LintReport& report, const std::string& rule,
                 const std::string& site_substr,
                 Severity min_severity = Severity::kInfo) {
  return std::any_of(
      report.diagnostics.begin(), report.diagnostics.end(),
      [&](const Diagnostic& d) {
        return d.rule_id == rule &&
               d.site.find(site_substr) != std::string::npos &&
               static_cast<int>(d.severity) >= static_cast<int>(min_severity);
      });
}

CnvConfig tiny_cnv() { return CnvConfig{}.scaled(0.1875); }

TEST(LintR1, FoldingDivisibilityViolationsReportRuleAndSite) {
  Rng rng(3);
  CnvConfig cfg = tiny_cnv();
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  FoldingConfig folding = styled_folding(sites);
  folding.folds[0].pe = 5;    // out_channels is a multiple of 4, never of 5.
  folding.folds[1].simd = 7;  // matrix width 9 * ch_in is never 7-divisible.

  const LintReport report =
      analysis::lint_design(model, folding, AcceleratorConfig{});
  EXPECT_TRUE(has_finding(report, "R1", sites[0].name, Severity::kError));
  EXPECT_TRUE(has_finding(report, "R1", sites[1].name, Severity::kError));
}

TEST(LintR1, FoldingArityMismatchIsReported) {
  Rng rng(3);
  CnvConfig cfg = tiny_cnv();
  BranchyModel model = build_cnv(cfg, rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  FoldingConfig folding = default_folding(sites);
  folding.folds.pop_back();

  const LintReport report =
      analysis::lint_design(model, folding, AcceleratorConfig{});
  EXPECT_TRUE(has_finding(report, "R1", "folding", Severity::kError));
}

TEST(LintR2, ShapeMismatchReportsEverySite) {
  Rng rng(5);
  BranchyModel model;
  auto block = std::make_unique<Sequential>();
  block->append(std::make_unique<QuantConv2d>(3, 8, 3, 2, rng));
  // Broken: expects 12 input channels but the producer emits 8.
  block->append(std::make_unique<QuantConv2d>(12, 16, 3, 2, rng));
  block->append(std::make_unique<Flatten>());
  // Broken: in_features disagrees with the flattened activation.
  block->append(std::make_unique<QuantLinear>(100, 10, 2, rng));
  model.add_block(std::move(block));

  FoldingConfig folding;
  folding.folds = {LayerFold{1, 1}, LayerFold{1, 1}, LayerFold{1, 1}};
  const LintReport report =
      analysis::lint_design(model, folding, AcceleratorConfig{});
  // Both violations are reported in one pass — no first-check-wins abort.
  EXPECT_TRUE(has_finding(report, "R2", "backbone.b0.conv1", Severity::kError));
  EXPECT_TRUE(has_finding(report, "R2", "backbone.b0.fc0", Severity::kError));
}

TEST(LintR3, StreamWidthMismatchOnALink) {
  Accelerator acc;
  acc.num_exits = 0;
  HlsModule producer;
  producer.kind = HlsModuleKind::kMvtu;
  producer.name = "m0";
  producer.cycles = 10;
  producer.out_stream_elems = 4;
  HlsModule consumer;
  consumer.kind = HlsModuleKind::kMvtu;
  consumer.name = "m1";
  consumer.cycles = 10;
  consumer.in_stream_elems = 6;  // 4 vs 6: no integer ratio either way.
  acc.modules = {producer, consumer};
  acc.paths = {{0, 1}};

  const LintReport report = analysis::lint_accelerator(acc);
  EXPECT_TRUE(has_finding(report, "R3", "m0 -> m1", Severity::kWarning));
}

TEST(LintR4, SlowExitHeadFlagsBranchBackpressure) {
  Rng rng(7);
  CnvConfig cfg = tiny_cnv();
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  FoldingConfig folding = styled_folding(sites);
  // Fold the exit heads down to fully-serial execution: their initiation
  // interval then dwarfs the (well-folded) backbone tail behind the branch.
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].loc == SiteLoc::kExit) folding.folds[i] = LayerFold{1, 1};
  }

  const LintReport report =
      analysis::lint(model, folding, AcceleratorConfig{});
  EXPECT_FALSE(report.has_errors());
  EXPECT_TRUE(has_finding(report, "R4", "branch.exit0", Severity::kWarning));
}

TEST(LintR5, ResourceOverflowAgainstDeviceProfile) {
  Rng rng(9);
  CnvConfig cfg = tiny_cnv();
  BranchyModel model = build_cnv(cfg, rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  const FoldingConfig folding = styled_folding(sites);

  LintOptions options;
  options.device =
      analysis::DeviceProfile{"toy", Resources{100, 100, 1, 0}};
  const LintReport report =
      analysis::lint(model, folding, AcceleratorConfig{}, options);
  EXPECT_TRUE(has_finding(report, "R5", "device:toy", Severity::kError));
}

TEST(LintR6, MalformedFoldingJson) {
  Rng rng(11);
  CnvConfig cfg = tiny_cnv();
  BranchyModel model = build_cnv(cfg, rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  Json j = default_folding(sites).to_json(sites);
  j[sites[0].name]["PE"] = 0;           // non-positive PE
  j["no.such.layer"]["PE"] = 2;         // stale entry
  // (the stale key also breaks the site-count match)

  const LintReport report = analysis::lint_folding_json(j, sites);
  EXPECT_TRUE(has_finding(report, "R6", sites[0].name, Severity::kError));
  EXPECT_TRUE(has_finding(report, "R6", "no.such.layer"));
  EXPECT_TRUE(has_finding(report, "R6", "folding", Severity::kError));
}

TEST(LintR7, ExitPathMustExtendBackbonePrefix) {
  Accelerator acc;
  acc.num_exits = 1;
  HlsModule bb0;
  bb0.kind = HlsModuleKind::kMvtu;
  bb0.name = "bb0";
  bb0.cycles = 10;
  HlsModule head;
  head.kind = HlsModuleKind::kMvtu;
  head.name = "head0";
  head.cycles = 10;
  head.exit_head = 0;
  HlsModule bb1;
  bb1.kind = HlsModuleKind::kMvtu;
  bb1.name = "bb1";
  bb1.cycles = 10;
  bb1.exit_level = 1;
  acc.modules = {bb0, head, bb1};
  // Broken: the exit path diverges after bb0, which is not a Branch
  // duplicator (the compiler always splits at a Branch).
  acc.paths = {{0, 1}, {0, 2}};

  const LintReport report = analysis::lint_accelerator(acc);
  EXPECT_TRUE(has_finding(report, "R7", "paths[0]", Severity::kError));
}

TEST(LintR7, EmptyExitHeadIsStructurallyInvalid) {
  Rng rng(13);
  CnvConfig cfg = tiny_cnv();
  BranchyModel model = build_cnv(cfg, rng);
  model.add_exit(0, std::make_unique<Sequential>());

  const LintReport report =
      analysis::lint_design(model, FoldingConfig{}, AcceleratorConfig{});
  EXPECT_TRUE(has_finding(report, "R7", "exit0", Severity::kError));
}

TEST(LintIntegration, CompileAcceleratorAggregatesAllViolations) {
  Rng rng(17);
  CnvConfig cfg = tiny_cnv();
  BranchyModel model = build_cnv(cfg, rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  FoldingConfig folding = default_folding(sites);
  folding.folds[0].pe = 5;
  folding.folds[1].simd = 7;

  try {
    compile_accelerator(model, folding, AcceleratorConfig{});
    FAIL() << "compile_accelerator accepted an invalid folding";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    // Both violations appear in the one structured failure.
    EXPECT_NE(what.find(sites[0].name), std::string::npos) << what;
    EXPECT_NE(what.find(sites[1].name), std::string::npos) << what;
  }
}

TEST(LintClean, DefaultAndStyledFoldingsAcrossScales) {
  const ExperimentScale scales[] = {
      ExperimentScale::tiny(), ExperimentScale::small_scale(),
      ExperimentScale::medium(), ExperimentScale::paper()};
  for (const auto& scale : scales) {
    SCOPED_TRACE(scale.name);
    const CnvConfig cfg = CnvConfig{}.scaled(scale.width_scale);
    for (const bool with_exits : {false, true}) {
      SCOPED_TRACE(with_exits ? "with exits" : "no exits");
      Rng rng(23);
      BranchyModel model =
          with_exits
              ? build_cnv_with_exits(cfg, paper_exits_config(false), rng)
              : build_cnv(cfg, rng);
      auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
      for (const bool styled : {false, true}) {
        SCOPED_TRACE(styled ? "styled_folding" : "default_folding");
        const FoldingConfig folding =
            styled ? styled_folding(sites) : default_folding(sites);
        const LintReport report =
            analysis::lint(model, folding, AcceleratorConfig{});
        EXPECT_EQ(report.count(Severity::kError), 0u)
            << report.format_table(Severity::kError);
      }
    }
  }
}

#if ADAPEX_DCHECKS_ENABLED
TEST(TensorDchecks, OutOfRangeAccessThrows) {
  Tensor t({2, 3, 4, 4});
  EXPECT_NO_THROW(t.at4(1, 2, 3, 3));
  EXPECT_THROW(t.at4(1, 3, 0, 0), Error);
  EXPECT_THROW(t.at4(2, 0, 0, 0), Error);
  Tensor m({2, 5});
  EXPECT_NO_THROW(m.at2(1, 4));
  EXPECT_THROW(m.at2(1, 5), Error);
  EXPECT_THROW(t[t.numel()], Error);
}
#endif

}  // namespace
}  // namespace adapex
