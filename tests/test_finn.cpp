// Tests for the HLS module cost models, the accelerator compiler, the
// analytical performance model, and the event-driven pipeline simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "finn/accelerator.hpp"
#include "finn/pipeline_sim.hpp"
#include "finn/reconfig.hpp"
#include "model/cnv.hpp"
#include "pruning/pruning.hpp"

namespace adapex {
namespace {

MvtuGeometry conv_geom() {
  MvtuGeometry g;
  g.is_conv = true;
  g.in_channels = 16;
  g.out_channels = 32;
  g.kernel = 3;
  g.in_dim = 14;
  g.out_dim = 12;
  g.weight_bits = 2;
  g.act_bits = 2;
  return g;
}

TEST(HlsModules, MvtuCyclesFoldingScaling) {
  auto g = conv_geom();
  const long base = mvtu_cycles(g, 1, 1);
  EXPECT_EQ(base, 12L * 12 * 9 * 16 * 32);
  // Doubling PE halves cycles; doubling SIMD halves cycles.
  EXPECT_EQ(mvtu_cycles(g, 2, 1), base / 2);
  EXPECT_EQ(mvtu_cycles(g, 1, 2), base / 2);
  EXPECT_EQ(mvtu_cycles(g, 4, 4), base / 16);
}

TEST(HlsModules, MvtuRejectsNonDividingFolds) {
  auto g = conv_geom();
  EXPECT_THROW(mvtu_cycles(g, 3, 1), Error);   // 32 % 3 != 0
  EXPECT_THROW(mvtu_cycles(g, 1, 5), Error);   // 16 % 5 != 0
}

TEST(HlsModules, SwuNeverSlowerThanItsMvtu) {
  auto g = conv_geom();
  for (int pe : {1, 2, 4}) {
    for (int simd : {1, 2, 4}) {
      EXPECT_LE(swu_cycles(g, simd), mvtu_cycles(g, pe, simd)) << pe << "x" << simd;
    }
  }
}

TEST(HlsModules, ResourcesGrowWithFolding) {
  auto g = conv_geom();
  HlsCostModel cost;
  const Resources r1 = mvtu_resources(g, 1, 1, cost);
  const Resources r4 = mvtu_resources(g, 4, 4, cost);
  EXPECT_GT(r4.lut, r1.lut);  // more parallel hardware
  EXPECT_GT(r1.lut, 0);
  EXPECT_GE(r1.bram, 0);
}

TEST(HlsModules, LowPrecisionUsesNoDsp) {
  auto g = conv_geom();
  HlsCostModel cost;
  EXPECT_EQ(mvtu_resources(g, 2, 2, cost).dsp, 0);
  g.weight_bits = 8;
  EXPECT_GT(mvtu_resources(g, 2, 2, cost).dsp, 0);
}

struct CompiledFixture {
  CnvConfig cfg;
  BranchyModel model;
  FoldingConfig folding;
  Accelerator acc;

  explicit CompiledFixture(bool with_exits, double scale = 0.25) {
    Rng rng(17);
    cfg = CnvConfig{}.scaled(scale);
    model = with_exits
                ? build_cnv_with_exits(cfg, paper_exits_config(false), rng)
                : build_cnv(cfg, rng);
    auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
    folding = styled_folding(sites);
    AcceleratorConfig acfg;
    acc = compile_accelerator(model, folding, acfg);
  }
};

TEST(Accelerator, ModuleInventoryNoExits) {
  CompiledFixture fx(false);
  // 6 convs -> 6 SWU + 6 MVTU; 3 fcs -> 3 MVTU; 2 pools.
  int swu = 0, mvtu = 0, pool = 0, branch = 0;
  for (const auto& m : fx.acc.modules) {
    switch (m.kind) {
      case HlsModuleKind::kSwu: ++swu; break;
      case HlsModuleKind::kMvtu: ++mvtu; break;
      case HlsModuleKind::kPool: ++pool; break;
      case HlsModuleKind::kBranch: ++branch; break;
    }
  }
  EXPECT_EQ(swu, 6);
  EXPECT_EQ(mvtu, 9);
  EXPECT_EQ(pool, 2);
  EXPECT_EQ(branch, 0);
  ASSERT_EQ(fx.acc.paths.size(), 1u);
  EXPECT_EQ(fx.acc.paths[0].size(), fx.acc.modules.size());
  EXPECT_EQ(fx.acc.num_exits, 0);
}

TEST(Accelerator, ModuleInventoryWithExits) {
  CompiledFixture fx(true);
  int branch = 0;
  for (const auto& m : fx.acc.modules) {
    if (m.kind == HlsModuleKind::kBranch) ++branch;
  }
  EXPECT_EQ(branch, 2);
  ASSERT_EQ(fx.acc.paths.size(), 3u);
  // Exit paths are strictly shorter than the full path in cycle terms.
  auto path_cycles = [&](const std::vector<int>& p) {
    long c = 0;
    for (int mi : p) c += fx.acc.modules[static_cast<std::size_t>(mi)].cycles;
    return c;
  };
  EXPECT_LT(path_cycles(fx.acc.paths[0]), path_cycles(fx.acc.paths[2]));
  EXPECT_LT(path_cycles(fx.acc.paths[1]), path_cycles(fx.acc.paths[2]));
  EXPECT_GT(fx.acc.exit_overhead.lut, 0);
  EXPECT_GT(fx.acc.exit_overhead.bram, 0);
}

TEST(Accelerator, ExitLevelsMonotoneAlongBackbone) {
  CompiledFixture fx(true);
  int prev_level = 0;
  for (int mi : fx.acc.paths.back()) {
    const auto& m = fx.acc.modules[static_cast<std::size_t>(mi)];
    EXPECT_GE(m.exit_level, prev_level);
    prev_level = m.exit_level;
    EXPECT_EQ(m.exit_head, -1);
  }
  EXPECT_EQ(prev_level, 2);
}

TEST(Accelerator, PerfNoExitsMatchesBottleneck) {
  CompiledFixture fx(false);
  PowerModel power;
  auto perf = estimate_performance(fx.acc, {1.0}, power);
  long max_cycles = 0;
  long sum_cycles = 0;
  for (const auto& m : fx.acc.modules) {
    max_cycles = std::max(max_cycles, m.cycles);
    sum_cycles += m.cycles;
  }
  EXPECT_NEAR(perf.ips, fx.acc.fclk_hz() / static_cast<double>(max_cycles),
              1e-6 * perf.ips);
  EXPECT_NEAR(perf.latency_ms,
              static_cast<double>(sum_cycles) / fx.acc.fclk_hz() * 1e3,
              1e-9);
  EXPECT_GT(perf.peak_power_w, power.static_w);
  EXPECT_GT(perf.energy_per_inf_j, 0.0);
}

TEST(Accelerator, MoreEarlyExitsMeansMoreIpsLessEnergy) {
  CompiledFixture fx(true);
  PowerModel power;
  auto all_final = estimate_performance(fx.acc, {0.0, 0.0, 1.0}, power);
  auto half_early = estimate_performance(fx.acc, {0.5, 0.2, 0.3}, power);
  auto all_early = estimate_performance(fx.acc, {1.0, 0.0, 0.0}, power);
  EXPECT_GT(half_early.ips, all_final.ips);
  // Throughput saturates once the pre-branch backbone becomes the
  // bottleneck, so "all early" is >= "half early" but not necessarily >.
  EXPECT_GE(all_early.ips, half_early.ips);
  EXPECT_GT(all_early.ips, all_final.ips);
  EXPECT_LT(half_early.latency_ms, all_final.latency_ms);
  EXPECT_LT(half_early.energy_per_inf_j, all_final.energy_per_inf_j);
}

TEST(Accelerator, ExitFractionValidation) {
  CompiledFixture fx(true);
  PowerModel power;
  EXPECT_THROW(estimate_performance(fx.acc, {1.0}, power), Error);
  EXPECT_THROW(estimate_performance(fx.acc, {0.5, 0.2, 0.2}, power), Error);
}

TEST(Accelerator, PruningReducesResourcesAndRaisesIps) {
  Rng rng(23);
  CnvConfig cfg = CnvConfig{}.scaled(0.25);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  auto folding = default_folding(sites);
  AcceleratorConfig acfg;
  Accelerator full = compile_accelerator(model, folding, acfg);

  PruneOptions opts;
  opts.rate = 0.5;
  opts.folding = folding;
  prune_model(model, opts);
  Accelerator pruned = compile_accelerator(model, folding, acfg);

  // Pruning can move a shrunken layer's weights from BRAM into LUTRAM, so
  // compare the aggregate memory footprint (1 BRAM18 ~ 18k bits ~ 288
  // LUT-equivalents) rather than each resource in isolation.
  auto footprint = [](const Resources& r) { return r.lut + 288 * r.bram; };
  EXPECT_LT(footprint(pruned.total), footprint(full.total));
  EXPECT_LE(pruned.total.bram, full.total.bram);
  PowerModel power;
  auto full_perf = estimate_performance(full, {0.0, 0.0, 1.0}, power);
  auto pruned_perf = estimate_performance(pruned, {0.0, 0.0, 1.0}, power);
  EXPECT_GT(pruned_perf.ips, full_perf.ips);
  EXPECT_LT(pruned_perf.latency_ms, full_perf.latency_ms);
}

TEST(PipelineSim, SteadyStateMatchesAnalyticII) {
  CompiledFixture fx(false);
  // Long run: backpressure needs ~fifo-depth x pipeline-depth images to
  // throttle the source before the steady window starts.
  std::vector<int> exits(512, 0);  // single output model: exit index 0
  auto sim = simulate_pipeline(fx.acc, exits);
  long max_cycles = 0;
  for (const auto& m : fx.acc.modules) max_cycles = std::max(max_cycles, m.cycles);
  EXPECT_NEAR(sim.steady_ii_cycles, static_cast<double>(max_cycles),
              0.01 * max_cycles);
  // First-image latency equals the path sum (no contention).
  long sum_cycles = 0;
  for (const auto& m : fx.acc.modules) sum_cycles += m.cycles;
  EXPECT_NEAR(sim.first_latency_cycles, static_cast<double>(sum_cycles), 1.0);
}

TEST(PipelineSim, EarlyExitsRaiseSimulatedThroughput) {
  CompiledFixture fx(true);
  std::vector<int> all_final(64, 2);
  std::vector<int> mostly_early(64);
  for (std::size_t i = 0; i < mostly_early.size(); ++i) {
    mostly_early[i] = i % 4 == 0 ? 2 : 0;  // 75% take exit 0
  }
  auto slow = simulate_pipeline(fx.acc, all_final);
  auto fast = simulate_pipeline(fx.acc, mostly_early);
  EXPECT_LT(fast.steady_ii_cycles, slow.steady_ii_cycles);
}

TEST(PipelineSim, AgreesWithAnalyticUnderExitMix) {
  CompiledFixture fx(true);
  // 50% exit0, 25% exit1, 25% final, deterministically interleaved.
  std::vector<int> exits(400);
  for (std::size_t i = 0; i < exits.size(); ++i) {
    exits[i] = (i % 4 == 0) ? 2 : (i % 4 == 2 ? 1 : 0);
  }
  auto sim = simulate_pipeline(fx.acc, exits);
  PowerModel power;
  auto perf = estimate_performance(fx.acc, {0.5, 0.25, 0.25}, power);
  const double analytic_ii = fx.acc.fclk_hz() / perf.ips;
  // Transaction-level sim and the occupancy model agree within 15%.
  EXPECT_NEAR(sim.steady_ii_cycles, analytic_ii, 0.15 * analytic_ii);
}

TEST(Reconfig, TimeModel) {
  CompiledFixture fx(false);
  ReconfigModel model;
  const double t = model.time_ms(fx.acc);
  EXPECT_GE(t, model.base_ms);
  EXPECT_LT(t, model.base_ms + 50.0);
}

}  // namespace
}  // namespace adapex
