// Tests for the soft-error (SEU) subsystem: injector determinism and
// stream independence, the drift detector, the manager's scrub/reload
// recovery path, mitigation behaviour in the edge simulation (ECC,
// scrubbing, TMR), the zero-rate invariant, the mitigation cost model, and
// the EdgeMetrics writers.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "edge/simulation.hpp"
#include "finn/accelerator.hpp"
#include "finn/mitigation.hpp"
#include "library/cache.hpp"
#include "runtime/faults.hpp"
#include "runtime/manager.hpp"

namespace adapex {
namespace {

LibraryEntry entry(int accel, ModelVariant v, int rate, int ct, double acc,
                   double ips, double lat_ms, double power_w, double e_j) {
  LibraryEntry e;
  e.accel_id = accel;
  e.variant = v;
  e.prune_rate_pct = rate;
  e.conf_threshold_pct = ct;
  e.accuracy = acc;
  e.exit_fractions = v == ModelVariant::kNoExit
                         ? std::vector<double>{1.0}
                         : std::vector<double>{0.5, 0.5};
  e.ips = ips;
  e.latency_ms = lat_ms;
  e.peak_power_w = power_w;
  e.energy_per_inf_j = e_j;
  return e;
}

/// Same controlled library as test_runtime_faults.cpp.
Library controlled_library() {
  Library lib;
  lib.dataset = "controlled";
  lib.reference_accuracy = 0.90;
  lib.static_power_w = 0.7;
  for (int id = 0; id < 4; ++id) {
    AcceleratorRecord a;
    a.id = id;
    a.variant = id < 2 ? ModelVariant::kNoExit : ModelVariant::kNotPrunedExits;
    a.prune_rate_pct = (id % 2) * 50;
    a.reconfig_ms = 145.0;
    lib.accelerators.push_back(a);
  }
  lib.entries = {
      entry(0, ModelVariant::kNoExit, 0, -1, 0.90, 100, 6.0, 1.16, 0.006),
      entry(1, ModelVariant::kNoExit, 50, -1, 0.70, 300, 2.0, 1.00, 0.002),
      entry(2, ModelVariant::kNotPrunedExits, 0, 50, 0.88, 120, 5.0, 1.35,
            0.005),
      entry(2, ModelVariant::kNotPrunedExits, 0, 5, 0.84, 200, 3.0, 1.30,
            0.004),
      entry(3, ModelVariant::kNotPrunedExits, 50, 50, 0.82, 350, 1.8, 1.20,
            0.002),
      entry(3, ModelVariant::kNotPrunedExits, 50, 5, 0.78, 500, 1.2, 1.18,
            0.0015),
  };
  return lib;
}

/// Steady scenario: load sits comfortably on the initial operating point so
/// SEU effects, not workload adaptation, dominate the episode.
EdgeScenario steady_scenario(std::uint64_t seed) {
  EdgeScenario sc;
  sc.cameras = 20;
  sc.ips_per_camera = 4.0;  // 80 ips, below every entry's throughput
  sc.deviation = 0.1;
  sc.duration_s = 30.0;
  sc.seed = seed;
  return sc;
}

FaultSpec seu_faults(double weight_prob, double config_prob) {
  FaultSpec f;
  f.seu_weight_prob = weight_prob;
  f.seu_config_prob = config_prob;
  return f;
}

TEST(SeuInjector, DeterministicPerSeed) {
  const FaultSpec f = seu_faults(0.3, 0.3);
  FaultInjector a(f, 42), b(f, 42), c(f, 43);
  bool differs_from_c = false;
  for (int i = 0; i < 300; ++i) {
    const bool wa = a.draw_weight_upset();
    EXPECT_EQ(wa, b.draw_weight_upset());
    const ConfigUpset ca = a.draw_config_upset();
    EXPECT_EQ(ca, b.draw_config_upset());
    if (wa != c.draw_weight_upset() || ca != c.draw_config_upset()) {
      differs_from_c = true;
    }
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(SeuInjector, StreamsIndependentOfOtherFaultCategories) {
  // Drawing reconfigurations and stalls at wildly different cadence must
  // not perturb the SEU upset sequence — and vice versa.
  FaultSpec quiet = seu_faults(0.25, 0.25);
  FaultSpec noisy = quiet;
  noisy.reconfig_fail_prob = 0.9;
  noisy.stall_prob = 0.9;
  noisy.monitor_drop_prob = 0.9;
  FaultInjector a(quiet, 7), b(noisy, 7);
  for (int i = 0; i < 200; ++i) {
    if (i % 2 == 0) {
      (void)b.attempt_reconfig(100.0);
      (void)b.draw_stall();
      (void)b.draw_stall();
      (void)b.draw_monitor_drop();
    }
    EXPECT_EQ(a.draw_weight_upset(), b.draw_weight_upset()) << "tick " << i;
    EXPECT_EQ(a.draw_config_upset(), b.draw_config_upset()) << "tick " << i;
  }

  // Mirror direction: enabling SEUs (and drawing them) must not perturb the
  // reconfiguration-outcome sequence.
  FaultSpec base;
  base.reconfig_fail_prob = 0.4;
  FaultSpec with_seu = base;
  with_seu.seu_weight_prob = 0.8;
  with_seu.seu_config_prob = 0.8;
  FaultInjector r1(base, 11), r2(with_seu, 11);
  for (int i = 0; i < 200; ++i) {
    (void)r2.draw_weight_upset();
    (void)r2.draw_config_upset();
    const auto o1 = r1.attempt_reconfig(145.0);
    const auto o2 = r2.attempt_reconfig(145.0);
    EXPECT_EQ(o1.success, o2.success) << "attempt " << i;
    EXPECT_DOUBLE_EQ(o1.dead_ms, o2.dead_ms) << "attempt " << i;
  }
}

TEST(SeuInjector, ConfigUpsetManifestationRespectsFractions) {
  FaultSpec f = seu_faults(0.0, 1.0);
  f.seu_hang_frac = 0.0;
  f.seu_exit_corrupt_frac = 1.0;  // every config upset corrupts an exit
  FaultInjector inj(f, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inj.draw_config_upset(), ConfigUpset::kExitCorrupt);
  }
  FaultSpec g = seu_faults(0.0, 1.0);
  g.seu_hang_frac = 1.0;
  g.seu_exit_corrupt_frac = 0.0;
  FaultInjector inj2(g, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inj2.draw_config_upset(), ConfigUpset::kHang);
  }
}

TEST(DriftDetector, FiresWithinBoundedWindowAndRespectsMinSamples) {
  DriftPolicy p;
  p.window = 6;
  p.min_samples = 3;
  p.accuracy_tolerance = 0.05;
  p.exit_rate_tolerance = 0.20;
  DriftDetector d(p);
  d.expect(0.90, 0.5);
  // A gross accuracy drop: must not fire before min_samples, must fire by
  // the time the window is full.
  for (int i = 1; i <= p.window; ++i) {
    d.observe(0.60, 0.5);
    if (i < p.min_samples) {
      EXPECT_FALSE(d.drifted()) << "sample " << i;
    }
  }
  EXPECT_TRUE(d.drifted());
  EXPECT_GT(d.accuracy_gap(), p.accuracy_tolerance);
  // Exit-rate shift alone also fires.
  DriftDetector e(p);
  e.expect(0.90, 0.4);
  for (int i = 0; i < p.window; ++i) e.observe(0.90, 0.9);
  EXPECT_TRUE(e.drifted());
  EXPECT_GT(e.exit_rate_gap(), p.exit_rate_tolerance);
}

TEST(DriftDetector, NeverFiresOnCleanObservations) {
  DriftDetector d{DriftPolicy{}};
  d.expect(0.88, 0.5);
  for (int i = 0; i < 100; ++i) {
    d.observe(0.88, 0.5);
    EXPECT_FALSE(d.drifted()) << "sample " << i;
  }
  // expect() resets the window.
  d.expect(0.70, 1.0);
  EXPECT_EQ(d.samples(), 0);
}

TEST(DriftDetector, RejectsInvalidPolicies) {
  DriftPolicy p;
  p.window = 0;
  EXPECT_THROW(DriftDetector{p}, Error);
  p = DriftPolicy{};
  p.min_samples = 9;  // > window
  EXPECT_THROW(DriftDetector{p}, Error);
  p = DriftPolicy{};
  p.accuracy_tolerance = 0.0;
  EXPECT_THROW(DriftDetector{p}, Error);
  p = DriftPolicy{};
  p.exit_rate_tolerance = -0.1;
  EXPECT_THROW(DriftDetector{p}, Error);
}

TEST(RuntimeManagerDrift, ScrubsFirstThenHealsOnCleanWindow) {
  const Library lib = controlled_library();
  RuntimeManager mgr(lib, {AdaptPolicy::kAdaPEx, 0.10});
  mgr.select(50.0, 0.0);
  Decision d = mgr.report_drift(1.0, /*scrub_available=*/true);
  EXPECT_TRUE(d.scrub);
  EXPECT_FALSE(d.reconfigure);
  EXPECT_EQ(mgr.state(), HealthState::kScrubbing);
  mgr.drift_cleared();
  EXPECT_EQ(mgr.state(), HealthState::kHealthy);
}

TEST(RuntimeManagerDrift, EscalatesToReloadWithoutScrubberAndOnPersistence) {
  const Library lib = controlled_library();
  RuntimeManager mgr(lib, {AdaptPolicy::kAdaPEx, 0.10});
  mgr.select(50.0, 0.0);  // accel 2
  // No scrubber deployed: straight to a reload of the active bitstream.
  Decision d = mgr.report_drift(1.0, /*scrub_available=*/false);
  EXPECT_TRUE(d.reload);
  ASSERT_TRUE(d.reconfigure);
  EXPECT_DOUBLE_EQ(d.reconfig_ms, 145.0);
  EXPECT_EQ(d.entry_index, d.attempted_index);  // same entry, rewritten
  EXPECT_EQ(mgr.state(), HealthState::kReloadPending);
  mgr.complete_reconfig(true, 1.0);
  EXPECT_EQ(mgr.state(), HealthState::kHealthy);

  // With a scrubber: scrub once, then persistent drift escalates.
  Decision s1 = mgr.report_drift(2.0, true);
  EXPECT_TRUE(s1.scrub);
  Decision s2 = mgr.report_drift(3.0, true);  // drift persisted through scrub
  EXPECT_TRUE(s2.reload);
  EXPECT_TRUE(s2.reconfigure);
  EXPECT_EQ(mgr.state(), HealthState::kReloadPending);
}

TEST(RuntimeManagerDrift, OwedReloadSurvivesFailureAndMootHeal) {
  const Library lib = controlled_library();
  RuntimePolicy p{AdaptPolicy::kAdaPEx, 0.10};
  p.backoff.initial_s = 0.5;
  RuntimeManager mgr(lib, p, 3);
  mgr.select(50.0, 0.0);
  Decision d = mgr.report_drift(0.0, false);
  ASSERT_TRUE(d.reload);
  mgr.complete_reconfig(false, 0.0);
  EXPECT_EQ(mgr.state(), HealthState::kBackoff);
  // At the retry window the workload search is happy where it is ("moot"),
  // but the bitstream is still suspect: the manager re-proposes the reload
  // instead of silently healing.
  Decision retry = mgr.select(50.0, mgr.next_retry_s());
  EXPECT_TRUE(retry.reload);
  ASSERT_TRUE(retry.reconfigure);
  mgr.complete_reconfig(true, mgr.next_retry_s());
  EXPECT_EQ(mgr.state(), HealthState::kHealthy);
  // Settled: the next moot window heals normally, no further reload.
  Decision after = mgr.select(50.0, 10.0);
  EXPECT_FALSE(after.reload);
  EXPECT_FALSE(after.reconfigure);
}

TEST(EdgeSimSeu, ZeroRatesLeaveEverySeuMetricZero) {
  const Library lib = controlled_library();
  EdgeScenario sc = steady_scenario(13);
  // Non-SEU faults active, SEU rates zero: the SEU ledger must stay empty.
  sc.faults.reconfig_fail_prob = 0.3;
  sc.faults.stall_prob = 0.05;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_EQ(m.seu_weight_upsets, 0);
  EXPECT_EQ(m.seu_config_upsets, 0);
  EXPECT_EQ(m.seu_corrected, 0);
  EXPECT_EQ(m.seu_detected, 0);
  EXPECT_EQ(m.seu_undetected, 0);
  EXPECT_EQ(m.silent_corruptions, 0);
  EXPECT_DOUBLE_EQ(m.seu_detection_latency_s, 0.0);
  EXPECT_EQ(m.drift_detections, 0);
  EXPECT_EQ(m.seu_scrubs, 0);
  EXPECT_EQ(m.seu_reloads, 0);
  EXPECT_DOUBLE_EQ(m.scrub_overhead_s, 0.0);
  EXPECT_DOUBLE_EQ(m.post_recovery_accuracy, 0.0);
  for (const auto& tp : m.trace) {
    EXPECT_FALSE(tp.seu_upset);
    EXPECT_FALSE(tp.drift_detected);
    EXPECT_FALSE(tp.scrubbed);
    EXPECT_FALSE(tp.reloaded);
  }
}

TEST(EdgeSimSeu, CleanSeedSweepNeverFiresTheDriftDetector) {
  const Library lib = controlled_library();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    EdgeScenario sc = steady_scenario(seed);
    sc.deviation = 0.6;  // plenty of reconfigurations and entry changes
    auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
    EXPECT_EQ(m.drift_detections, 0) << "seed " << seed;
    EXPECT_EQ(m.seu_reloads, 0) << "seed " << seed;
  }
}

TEST(EdgeSimSeu, EccCorrectsEveryWeightUpset) {
  const Library lib = controlled_library();
  EdgeScenario sc = steady_scenario(5);
  sc.faults = seu_faults(1.0, 0.0);
  sc.faults.mitigation.ecc_weights = true;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_GT(m.seu_weight_upsets, 0);
  EXPECT_EQ(m.seu_corrected, m.seu_weight_upsets);
  EXPECT_EQ(m.silent_corruptions, 0);
  EXPECT_EQ(m.drift_detections, 0);
  // Correction is immediate: delivered accuracy matches the upset-free run.
  EdgeScenario clean = sc;
  clean.faults = FaultSpec{};
  clean.faults.mitigation.ecc_weights = true;
  auto mc = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, clean);
  EXPECT_DOUBLE_EQ(m.accuracy, mc.accuracy);
  EXPECT_EQ(m.served, mc.served);
}

TEST(EdgeSimSeu, UnmitigatedUpsetsDriftAndReloadRecovers) {
  const Library lib = controlled_library();
  EdgeScenario sc = steady_scenario(9);
  sc.faults = seu_faults(0.15, 0.10);
  sc.faults.seu_hang_frac = 0.0;  // keep the pipeline serving
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_GT(m.seu_weight_upsets + m.seu_config_upsets, 0);
  EXPECT_GT(m.silent_corruptions, 0);     // damage before detection
  EXPECT_GT(m.drift_detections, 0);       // ... but it is detected
  EXPECT_GT(m.seu_reloads, 0);            // ... and repaired by reload
  EXPECT_GT(m.seu_detected, 0);
  EXPECT_GT(m.seu_detection_latency_s, 0.0);
  // Post-recovery serving is healthy again (within one upset of clean).
  EXPECT_GT(m.post_recovery_accuracy, 0.0);
  EXPECT_LT(m.accuracy, m.post_recovery_accuracy + 0.05);
  bool saw_reload_tick = false, saw_drift_tick = false;
  for (const auto& tp : m.trace) {
    saw_reload_tick |= tp.reloaded;
    saw_drift_tick |= tp.drift_detected;
  }
  EXPECT_TRUE(saw_reload_tick);
  EXPECT_TRUE(saw_drift_tick);
}

TEST(EdgeSimSeu, ScrubbingRepairsConfigUpsetsAtDarkTimeCost) {
  const Library lib = controlled_library();
  EdgeScenario sc = steady_scenario(21);
  sc.faults = seu_faults(0.0, 0.4);
  sc.faults.mitigation.scrubbing = true;
  sc.faults.mitigation.scrub_period_s = 2.0;
  sc.faults.mitigation.scrub_time_ms = 4.0;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_GT(m.seu_config_upsets, 0);
  EXPECT_GT(m.seu_scrubs, 0);
  EXPECT_GT(m.scrub_overhead_s, 0.0);
  EXPECT_GT(m.seu_detected, 0);
  // The periodic scrub bounds damage: far fewer silent corruptions than
  // the unmitigated run of the same seed (paired upset streams).
  EdgeScenario bare = sc;
  bare.faults.mitigation = SeuMitigation{};
  auto mb = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, bare);
  EXPECT_LT(m.silent_corruptions, mb.silent_corruptions);
  bool saw_scrub_tick = false;
  for (const auto& tp : m.trace) saw_scrub_tick |= tp.scrubbed;
  EXPECT_TRUE(saw_scrub_tick);
}

TEST(EdgeSimSeu, TmrMasksExitConfidenceCorruption) {
  const Library lib = controlled_library();
  EdgeScenario sc = steady_scenario(33);
  sc.faults = seu_faults(0.0, 0.5);
  sc.faults.seu_hang_frac = 0.0;
  sc.faults.seu_exit_corrupt_frac = 1.0;  // every config upset hits an exit
  sc.faults.mitigation.tmr_exit_heads = true;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_GT(m.seu_config_upsets, 0);
  EXPECT_EQ(m.seu_corrected, m.seu_config_upsets);
  EXPECT_EQ(m.silent_corruptions, 0);
  EXPECT_EQ(m.drift_detections, 0);
}

TEST(EdgeSimSeu, HangsAreEscalatedAndServingRecovers) {
  const Library lib = controlled_library();
  EdgeScenario sc = steady_scenario(17);
  sc.faults = seu_faults(0.0, 0.2);
  sc.faults.seu_hang_frac = 1.0;  // every config upset wedges the pipeline
  sc.faults.seu_exit_corrupt_frac = 0.0;
  sc.watchdog_periods = 4;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_GT(m.seu_config_upsets, 0);
  // The hang is caught (watchdog escalation) and repaired by reload.
  EXPECT_GT(m.seu_reloads, 0);
  EXPECT_GT(m.served, 0);
  EXPECT_GT(m.dead_time_s, 0.0);
}

TEST(EdgeSimSeu, FullMitigationBeatsNoMitigation) {
  const Library lib = controlled_library();
  EdgeScenario sc = steady_scenario(3);
  sc.faults = seu_faults(0.10, 0.10);
  RuntimePolicy pol{AdaptPolicy::kAdaPEx, 0.10};
  const auto none = simulate_edge_runs(lib, pol, sc, 8);
  EdgeScenario full = sc;
  full.faults.mitigation.ecc_weights = true;
  full.faults.mitigation.scrubbing = true;
  full.faults.mitigation.tmr_exit_heads = true;
  const auto mit = simulate_edge_runs(lib, pol, full, 8);
  EXPECT_LT(mit.silent_corruptions, none.silent_corruptions);
  EXPECT_GE(mit.accuracy, none.accuracy);
  // The protection is not free: scrub passes cost dark time.
  EXPECT_GT(mit.scrub_overhead_s, 0.0);
}

TEST(EdgeSimSeu, SeuEpisodesAreIdenticalAcrossConcurrentThreads) {
  const Library lib = controlled_library();
  EdgeScenario sc = steady_scenario(29);
  sc.faults = seu_faults(0.2, 0.2);
  sc.faults.mitigation.scrubbing = true;
  const auto serial = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  std::vector<EdgeMetrics> results(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] =
          simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& m : results) {
    EXPECT_EQ(m.served, serial.served);
    EXPECT_EQ(m.seu_weight_upsets, serial.seu_weight_upsets);
    EXPECT_EQ(m.seu_config_upsets, serial.seu_config_upsets);
    EXPECT_EQ(m.seu_scrubs, serial.seu_scrubs);
    EXPECT_EQ(m.silent_corruptions, serial.silent_corruptions);
    EXPECT_DOUBLE_EQ(m.seu_detection_latency_s,
                     serial.seu_detection_latency_s);
    EXPECT_DOUBLE_EQ(m.accuracy, serial.accuracy);
  }
}

TEST(EdgeMetricsWriters, JsonAndCsvCoverTheSameScalars) {
  const Library lib = controlled_library();
  EdgeScenario sc = steady_scenario(7);
  sc.faults = seu_faults(0.1, 0.1);
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  const Json j = m.to_json();
  const std::string header = EdgeMetrics::csv_header();
  const std::string row = m.csv_row();
  // Same column count in header, row, and JSON object.
  const auto count = [](const std::string& s) {
    std::size_t n = 1;
    for (char c : s) n += c == ',';
    return n;
  };
  EXPECT_EQ(count(header), count(row));
  EXPECT_EQ(count(header), j.as_object().size());
  for (const char* key :
       {"qoe", "silent_corruptions", "seu_detected", "scrub_overhead_s",
        "post_recovery_accuracy", "availability_pct"}) {
    EXPECT_TRUE(j.contains(key)) << key;
  }
  EXPECT_DOUBLE_EQ(j.at("accuracy").as_number(), m.accuracy);
}

TEST(EdgeMetricsWriters, RefuseNonFiniteValues) {
  EdgeMetrics m;
  m.accuracy = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(m.to_json(), Error);
  EXPECT_THROW(m.csv_row(), Error);
  m.accuracy = std::numeric_limits<double>::infinity();
  EXPECT_THROW(m.to_json(), Error);
}

TEST(EdgeMetricsWriters, ZeroSampleEpisodeStaysFinite) {
  const Library lib = controlled_library();
  EdgeScenario sc = steady_scenario(2);
  sc.ips_per_camera = 0.0;  // nothing is ever offered
  sc.duration_s = 1.0;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_EQ(m.offered, 0);
  EXPECT_EQ(m.served, 0);
  EXPECT_DOUBLE_EQ(m.inference_loss_pct, 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
  EXPECT_NO_THROW(m.to_json());
  EXPECT_NO_THROW(m.csv_row());
}

TEST(MitigationCostModel, OverheadsMatchTheModel) {
  Accelerator acc;
  HlsModule mvtu;
  mvtu.kind = HlsModuleKind::kMvtu;
  mvtu.resources = {1000, 1100, 40, 0};
  HlsModule head;
  head.kind = HlsModuleKind::kMvtu;
  head.exit_head = 0;
  head.resources = {300, 330, 8, 2};
  HlsModule branch;
  branch.kind = HlsModuleKind::kBranch;
  branch.resources = {50, 60, 2, 0};
  acc.modules = {mvtu, head, branch};
  acc.num_exits = 1;

  const MitigationCostModel cost;
  SeuMitigation none;
  const auto zero = estimate_mitigation(acc, none, cost);
  EXPECT_EQ(zero.overhead.lut, 0);
  EXPECT_EQ(zero.overhead.bram, 0);
  EXPECT_DOUBLE_EQ(zero.throughput_factor, 1.0);

  SeuMitigation ecc;
  ecc.ecc_weights = true;
  const auto er = estimate_mitigation(acc, ecc, cost);
  // Both MVTU modules' BRAMs are weight memory (48); the branch's are not.
  EXPECT_EQ(er.protected_weight_brams, 48);
  EXPECT_EQ(er.overhead.bram, 6);  // ceil(0.125 * 48)
  EXPECT_EQ(er.overhead.lut, 48 * 55);
  EXPECT_DOUBLE_EQ(er.throughput_factor, cost.ecc_throughput_factor);

  SeuMitigation tmr;
  tmr.tmr_exit_heads = true;
  const auto tr = estimate_mitigation(acc, tmr, cost);
  // Two extra replicas of the exit head plus one voter.
  EXPECT_EQ(tr.overhead.lut, 2 * 300 + 120);
  EXPECT_EQ(tr.overhead.dsp, 4);
  EXPECT_EQ(tr.tmr_heads, 1);
  EXPECT_DOUBLE_EQ(tr.throughput_factor, 1.0);

  SeuMitigation scrub;
  scrub.scrubbing = true;
  const auto sr = estimate_mitigation(acc, scrub, cost);
  EXPECT_EQ(sr.overhead.lut, 1800);
  EXPECT_EQ(sr.overhead.bram, 4);
}

TEST(LibrarySerialization, MitigationRoundTripsAndStaysAbsentWhenOff) {
  Library lib = controlled_library();
  const std::string bare = lib.to_json().dump();
  EXPECT_EQ(bare.find("mitigation"), std::string::npos);

  lib.mitigation.ecc_weights = true;
  lib.mitigation.scrubbing = true;
  lib.mitigation.scrub_period_s = 1.5;
  lib.accelerators[0].mitigation = lib.mitigation;
  lib.accelerators[0].mitigation_overhead = {100, 200, 3, 0};
  const Library back = Library::from_json(lib.to_json());
  EXPECT_TRUE(back.mitigation.ecc_weights);
  EXPECT_TRUE(back.mitigation.scrubbing);
  EXPECT_DOUBLE_EQ(back.mitigation.scrub_period_s, 1.5);
  EXPECT_TRUE(back.accelerators[0].mitigation.any());
  EXPECT_EQ(back.accelerators[0].mitigation_overhead.ff, 200);
  EXPECT_FALSE(back.accelerators[1].mitigation.any());
}

TEST(LibraryCache, MitigationOffDoesNotTouchTheKey) {
  LibraryGenSpec a;
  LibraryGenSpec b = a;
  // Fields of a *disabled* mitigation must not enter the key: pre-existing
  // cached artifacts stay valid.
  b.mitigation.scrub_period_s = 99.0;
  b.mitigation_cost.scrub_lut = 12345.0;
  EXPECT_EQ(library_cache_key(a), library_cache_key(b));
  // Enabling a mitigation must change the key.
  LibraryGenSpec c = a;
  c.mitigation.ecc_weights = true;
  EXPECT_NE(library_cache_key(a), library_cache_key(c));
}

}  // namespace
}  // namespace adapex
