// Crash-safety tests for the journaled library generator: kill-and-resume
// byte identity, checkpoint/artifact tamper detection and quarantine,
// per-point failure isolation (retry / quarantine / partial emission), and
// the RG1-RG5 generation-spec lint rules.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "common/integrity.hpp"
#include "core/scale.hpp"
#include "library/cache.hpp"
#include "library/generator.hpp"
#include "library/journal.hpp"

namespace adapex {
namespace {

/// Same shape as the parallel tests' spec: all three families, three rates,
/// tiny training — 8 design points, a couple of seconds per full run.
LibraryGenSpec fast_spec() {
  auto spec = make_gen_spec(cifar10_like_spec(), ExperimentScale::tiny());
  spec.dataset.train_size = 120;
  spec.dataset.test_size = 60;
  spec.initial_train.epochs = 3;
  spec.retrain.epochs = 1;
  spec.prune_rates_pct = {0, 25, 50};
  spec.conf_thresholds_pct = {0, 50};
  return spec;
}

/// Fresh scratch directory under /tmp, removed by the caller.
std::string scratch_dir(const std::string& tag) {
  const std::string dir =
      "/tmp/adapex_test_" + tag + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::size_t count_checkpoints(const std::string& journal_root,
                              const std::string& key) {
  std::size_t n = 0;
  const std::string dir = journal_root + "/" + key;
  if (!std::filesystem::exists(dir)) return 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("point_", 0) == 0 &&
        e.path().extension() == ".json" &&
        name.find(".error.") == std::string::npos) {
      ++n;
    }
  }
  return n;
}

TEST(LibraryResume, KillAndResumeByteIdentical) {
  // The acceptance gate: a generation run SIGKILLed mid-sweep must resume
  // from its journal into a Library byte-identical to an uninterrupted run,
  // at a different thread count than the killed run no less.
  auto spec = fast_spec();
  const Library reference = generate_library(spec);
  const std::string ref_bytes = reference.to_json().dump(1);

  const std::string journal = scratch_dir("resume_kill");
  const std::string key = library_cache_key(spec);

  // Fork while single-threaded (every generator pool above has joined).
  // The child journals checkpoints as points finish; the parent SIGKILLs
  // it after at least two checkpoints landed — a mid-sweep crash with no
  // destructors, no flushes, no atexit.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto child_spec = fast_spec();
    child_spec.journal_dir = journal;
    child_spec.num_threads = 2;
    try {
      generate_library(child_spec);
    } catch (...) {
    }
    _exit(0);
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  bool child_exited = false;
  while (count_checkpoints(journal, key) < 2) {
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) {
      child_exited = true;  // finished before we could kill it — still fine
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "no checkpoints appeared under " << journal << "/" << key;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!child_exited) {
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
  }

  // Resume in this process, serially, and require byte identity.
  auto resume_spec = fast_spec();
  resume_spec.journal_dir = journal;
  resume_spec.num_threads = 1;
  GenerationReport report;
  resume_spec.report = &report;
  const Library resumed = generate_library(resume_spec);
  EXPECT_EQ(resumed.to_json().dump(1), ref_bytes);
  if (!child_exited) {
    // The kill landed mid-sweep: something replayed, something computed.
    EXPECT_GE(report.count(PointStatus::kReplayed), 1u);
  }
  EXPECT_EQ(report.ok(), report.points.size());

  // A second resume replays everything without touching a model.
  GenerationReport replay_report;
  resume_spec.report = &replay_report;
  const Library replayed = generate_library(resume_spec);
  EXPECT_EQ(replayed.to_json().dump(1), ref_bytes);
  EXPECT_EQ(replay_report.count(PointStatus::kReplayed),
            replay_report.points.size());
  EXPECT_EQ(replay_report.count(PointStatus::kComputed), 0u);

  std::filesystem::remove_all(journal);
}

TEST(LibraryResume, TamperedCheckpointQuarantinedAndRecomputed) {
  auto spec = fast_spec();
  spec.journal_dir = scratch_dir("resume_tamper");
  const std::string key = library_cache_key(spec);
  const Library reference = generate_library(spec);
  const std::string ref_bytes = reference.to_json().dump(1);
  ASSERT_GE(count_checkpoints(spec.journal_dir, key), 2u);

  // Flip payload bytes of one checkpoint while keeping it parseable JSON:
  // only the content checksum can catch this.
  const std::string victim = spec.journal_dir + "/" + key + "/point_1.json";
  std::string text = read_file(victim);
  const auto pos = text.find("\"accuracy\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 10, "\"accuxacy\"");
  write_file(victim, text);
  ASSERT_NO_THROW(Json::parse(read_file(victim)));  // parseable, yet wrong

  std::vector<std::string> msgs;
  spec.on_progress = [&](const std::string& s) { msgs.push_back(s); };
  GenerationReport report;
  spec.report = &report;
  const Library resumed = generate_library(spec);
  EXPECT_EQ(resumed.to_json().dump(1), ref_bytes);
  EXPECT_EQ(report.count(PointStatus::kComputed), 1u);
  EXPECT_EQ(report.count(PointStatus::kReplayed), report.points.size() - 1);

  // Evidence preserved, corruption reported.
  EXPECT_TRUE(std::filesystem::exists(victim + ".corrupt"));
  bool reported = false;
  for (const auto& m : msgs) {
    if (m.find("discarding corrupt checkpoint") != std::string::npos) {
      reported = true;
    }
  }
  EXPECT_TRUE(reported);

  std::filesystem::remove_all(spec.journal_dir);
}

TEST(LibraryResume, TamperedCacheArtifactQuarantinedAndRegenerated) {
  const std::string dir = scratch_dir("cache_tamper");
  auto spec = fast_spec();
  spec.variants = {ModelVariant::kNoExit};
  spec.prune_rates_pct = {0};
  spec.conf_thresholds_pct = {50};

  const Library first = generate_or_load_library(spec, dir);
  const std::string path =
      dir + "/library_" + library_cache_key(spec) + ".json";
  ASSERT_TRUE(std::filesystem::exists(path));

  // Bit-flip inside the sealed payload; the file still parses.
  std::string text = read_file(path);
  const auto pos = text.find("\"dataset\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "\"detaset\"");
  write_file(path, text);
  ASSERT_NO_THROW(Json::parse(read_file(path)));

  std::vector<std::string> msgs;
  spec.on_progress = [&](const std::string& s) { msgs.push_back(s); };
  const Library second = generate_or_load_library(spec, dir);
  EXPECT_EQ(second.to_json().dump(1), first.to_json().dump(1));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  bool reported = false;
  for (const auto& m : msgs) {
    if (m.rfind("cache: quarantining corrupt artifact", 0) == 0) {
      reported = true;
    }
  }
  EXPECT_TRUE(reported);
  // The regenerated artifact verifies clean.
  EXPECT_NO_THROW(Library::load(path));

  std::filesystem::remove_all(dir);
}

TEST(LibraryResume, QuarantinedPointFailsRunByDefault) {
  auto spec = fast_spec();
  spec.point_fault_hook = [](std::size_t i, int) {
    if (i == 2) throw ConfigError("induced fault at point 2");
  };
  GenerationReport report;
  spec.report = &report;
  try {
    generate_library(spec);
    FAIL() << "PartialPolicy::kFail must throw on a quarantined point";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 design point(s) quarantined"), std::string::npos);
    EXPECT_NE(what.find("induced fault at point 2"), std::string::npos);
  }
  // Every other point still ran to completion before the throw, and the
  // report survived it.
  EXPECT_EQ(report.quarantined(), 1u);
  EXPECT_EQ(report.ok(), report.points.size() - 1);
}

TEST(LibraryResume, EmitPartialOmitsQuarantinedPointExplicitly) {
  auto no_fault = fast_spec();
  const Library full = generate_library(no_fault);

  auto spec = fast_spec();
  spec.partial_policy = PartialPolicy::kEmitPartial;
  spec.journal_dir = scratch_dir("resume_partial");
  const std::string key = library_cache_key(spec);
  spec.point_fault_hook = [](std::size_t i, int) {
    if (i == 0) throw ConfigError("induced persistent fault");
  };
  GenerationReport report;
  spec.report = &report;
  const Library partial = generate_library(spec);

  EXPECT_TRUE(report.partial);
  EXPECT_EQ(report.quarantined(), 1u);
  EXPECT_EQ(report.points[0].status, PointStatus::kQuarantined);
  EXPECT_EQ(report.points[0].attempts, 1);
  EXPECT_LT(partial.entries.size(), full.entries.size());
  EXPECT_LT(partial.accelerators.size(), full.accelerators.size());
  // The journal carries the quarantine record for the next run's triage.
  EXPECT_TRUE(std::filesystem::exists(spec.journal_dir + "/" + key +
                                      "/point_0.error.json"));
  EXPECT_NE(report.summary().find("PARTIAL"), std::string::npos);

  // Resuming without the fault heals the library to full canonical bytes.
  spec.point_fault_hook = nullptr;
  GenerationReport healed_report;
  spec.report = &healed_report;
  const Library healed = generate_library(spec);
  EXPECT_EQ(healed.to_json().dump(1), full.to_json().dump(1));
  EXPECT_FALSE(healed_report.partial);
  // The healed point's success checkpoint superseded its quarantine record.
  EXPECT_FALSE(std::filesystem::exists(spec.journal_dir + "/" + key +
                                       "/point_0.error.json"));

  std::filesystem::remove_all(spec.journal_dir);
}

TEST(LibraryResume, RetryRecoversTransientFaultOnForkedSeed) {
  auto spec = fast_spec();
  spec.max_point_retries = 2;
  spec.journal_dir = scratch_dir("resume_retry");
  spec.point_fault_hook = [](std::size_t i, int attempt) {
    if (i == 1 && attempt == 0) throw ConfigError("transient fault");
  };
  GenerationReport report;
  spec.report = &report;
  const Library retried = generate_library(spec);
  EXPECT_EQ(report.count(PointStatus::kRetried), 1u);
  EXPECT_EQ(report.points[1].attempts, 2);
  EXPECT_EQ(report.points[1].error, "transient fault");
  EXPECT_FALSE(retried.entries.empty());

  // The retried point trained from a forked seed stream, so its rows are
  // legal but non-canonical. A later journaled run with no fault must
  // refuse to replay the forked checkpoint (identity mismatch) and
  // recompute from the canonical stream — converging back to the exact
  // bytes of a never-failed run.
  const Library canonical = generate_library(fast_spec());
  spec.point_fault_hook = nullptr;
  GenerationReport resume_report;
  spec.report = &resume_report;
  const Library resumed = generate_library(spec);
  EXPECT_EQ(resumed.to_json().dump(1), canonical.to_json().dump(1));
  EXPECT_EQ(resume_report.count(PointStatus::kComputed), 1u);
  EXPECT_EQ(resume_report.count(PointStatus::kReplayed),
            resume_report.points.size() - 1);

  std::filesystem::remove_all(spec.journal_dir);
}

TEST(LibraryResume, PartialLibraryIsNeverCached) {
  const std::string dir = scratch_dir("cache_partial");
  auto spec = fast_spec();
  spec.partial_policy = PartialPolicy::kEmitPartial;
  spec.point_fault_hook = [](std::size_t i, int) {
    if (i == 0) throw ConfigError("induced persistent fault");
  };
  const std::string path =
      dir + "/library_" + library_cache_key(spec) + ".json";
  const Library partial = generate_or_load_library(spec, dir);
  EXPECT_FALSE(partial.entries.empty());
  EXPECT_FALSE(std::filesystem::exists(path))
      << "a partial library must not poison the artifact cache";
  std::filesystem::remove_all(dir);
}

TEST(GenSpecLint, CatchesBadKnobs) {
  // RG2: negative retry count is an error.
  {
    auto spec = fast_spec();
    spec.max_point_retries = -1;
    const auto report = lint_gen_spec(spec);
    ASSERT_TRUE(report.has_errors());
    EXPECT_EQ(report.diagnostics[0].rule_id, "RG2");
    EXPECT_THROW(generate_library(spec), ConfigError);
  }
  // RG2 (warning): excessive retries.
  {
    auto spec = fast_spec();
    spec.max_point_retries = 20;
    const auto report = lint_gen_spec(spec);
    EXPECT_FALSE(report.has_errors());
    EXPECT_EQ(report.count(analysis::Severity::kWarning), 1u);
  }
  // RG4: unknown checksum mode.
  {
    auto spec = fast_spec();
    spec.checksum_mode = "md5";
    const auto report = lint_gen_spec(spec);
    ASSERT_TRUE(report.has_errors());
    EXPECT_EQ(report.diagnostics[0].rule_id, "RG4");
    EXPECT_THROW(generate_library(spec), ConfigError);
  }
  // RG1: journal_dir exists as a regular file.
  {
    auto spec = fast_spec();
    const std::string dir = scratch_dir("lint_rg1");
    spec.journal_dir = dir + "/blocker";
    write_file(spec.journal_dir, "not a directory");
    const auto report = lint_gen_spec(spec);
    ASSERT_TRUE(report.has_errors());
    EXPECT_EQ(report.diagnostics[0].rule_id, "RG1");
    EXPECT_THROW(generate_library(spec), ConfigError);
    std::filesystem::remove_all(dir);
  }
  // RG3: emit_partial under verify_dataflow masks verifier rejections.
  {
    auto spec = fast_spec();
    spec.partial_policy = PartialPolicy::kEmitPartial;
    spec.verify_dataflow = true;
    const auto report = lint_gen_spec(spec);
    EXPECT_FALSE(report.has_errors());
    bool rg3 = false;
    for (const auto& d : report.diagnostics) rg3 |= d.rule_id == "RG3";
    EXPECT_TRUE(rg3);
  }
  // RG5: relative journal path warns, absolute path is clean.
  {
    auto spec = fast_spec();
    spec.journal_dir = "relative/journal";
    const auto report = lint_gen_spec(spec);
    bool rg5 = false;
    for (const auto& d : report.diagnostics) rg5 |= d.rule_id == "RG5";
    EXPECT_TRUE(rg5);
    std::filesystem::remove_all("relative");
  }
  {
    auto spec = fast_spec();
    spec.journal_dir = scratch_dir("lint_clean");
    spec.max_point_retries = 2;
    EXPECT_TRUE(lint_gen_spec(spec).empty());
    std::filesystem::remove_all(spec.journal_dir);
  }
}

TEST(Integrity, SealAndTamperRoundTrip) {
  Json payload = Json::object();
  payload["value"] = 42;
  payload["pi"] = 3.14159;
  for (const char* mode : {"fnv1a64", "crc32"}) {
    const std::string sealed = seal_document("unit", payload, mode);
    const Json reopened = open_document_text(sealed, "unit");
    EXPECT_EQ(reopened.dump(1), payload.dump(1)) << mode;
    // Wrong kind is rejected even with an intact checksum.
    EXPECT_THROW(open_document_text(sealed, "other"), IntegrityError);
    // A payload flip that keeps the JSON parseable is caught.
    std::string tampered = sealed;
    const auto pos = tampered.find("42");
    ASSERT_NE(pos, std::string::npos);
    tampered.replace(pos, 2, "43");
    EXPECT_THROW(open_document_text(tampered, "unit"), IntegrityError);
  }
  EXPECT_THROW(open_document_text("{\"format\": \"nope\"}", "unit"),
               IntegrityError);
}

TEST(Integrity, AtomicWriteAndQuarantine) {
  const std::string dir = scratch_dir("integrity_io");
  const std::string path = dir + "/doc.json";
  atomic_write_file(path, "first");
  EXPECT_EQ(read_file(path), "first");
  atomic_write_file(path, "second");
  EXPECT_EQ(read_file(path), "second");
  // No temp debris.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);

  const std::string moved = quarantine_file(path);
  EXPECT_EQ(moved, path + ".corrupt");
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_EQ(read_file(moved), "second");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace adapex
