// Tests for the folding layer's shared cycle model, the default-folding
// matrix-width fix, folding JSON duplicate-name rejection, and the
// reach-aware heterogeneous folding optimizer (hls/folding.hpp).

#include <gtest/gtest.h>

#include "analysis/dataflow.hpp"
#include "analysis/device.hpp"
#include "finn/accelerator.hpp"
#include "library/generator.hpp"
#include "model/cnv.hpp"

namespace adapex {
namespace {

LayerSite conv_site(const std::string& name, int in_channels, int out_channels,
                    int kernel, int in_dim) {
  LayerSite s;
  s.is_conv = true;
  s.in_channels = in_channels;
  s.out_channels = out_channels;
  s.kernel = kernel;
  s.in_dim = in_dim;
  s.out_dim = in_dim - kernel + 1;
  s.name = name;
  return s;
}

LayerSite fc_site(const std::string& name, int in_features, int out_features) {
  LayerSite s;
  s.is_conv = false;
  s.in_channels = in_features;
  s.out_channels = out_features;
  s.name = name;
  return s;
}

TEST(FoldingMatrixWidth, ConvUnrollsAcrossTheKernelWindow) {
  EXPECT_EQ(site_matrix_width(conv_site("c", 3, 16, 3, 32)), 27);
  EXPECT_EQ(site_matrix_width(conv_site("c", 16, 32, 3, 16)), 144);
  EXPECT_EQ(site_matrix_width(fc_site("f", 256, 10)), 256);
}

// Regression: default_folding used to search SIMD divisors of the bare
// channel count, so an RGB input conv (3 channels) was stuck at SIMD=3 even
// though FINN's MVAU unrolls across the whole k^2 * ch_in im2col window.
TEST(FoldingDefault, ConvSimdReachesCapViaKernelWindowUnrolling) {
  const std::vector<LayerSite> sites = {conv_site("first", 3, 16, 3, 32)};
  const FoldingConfig cfg = default_folding(sites, 4, 9);
  ASSERT_EQ(cfg.folds.size(), 1u);
  EXPECT_EQ(cfg.folds[0].pe, 4);
  EXPECT_EQ(cfg.folds[0].simd, 9);  // divides 27, not 3
  validate_folding(sites, cfg);
  // The fix applies to every generator: a styled config on the same site
  // must also pick a kernel-window SIMD.
  const FoldingConfig styled = styled_folding(sites);
  EXPECT_EQ(styled.folds[0].simd % 9, 0);
}

TEST(FoldingJson, DuplicateSiteNamesAreRejectedOnSerialize) {
  const std::vector<LayerSite> sites = {conv_site("dup", 4, 8, 3, 8),
                                        conv_site("dup", 8, 16, 3, 6)};
  FoldingConfig cfg;
  cfg.folds = {LayerFold{1, 1}, LayerFold{1, 1}};
  EXPECT_THROW(cfg.to_json(sites), ConfigError);
}

TEST(FoldingJson, DuplicateSiteNamesAreRejectedOnParse) {
  const std::vector<LayerSite> sites = {conv_site("dup", 4, 8, 3, 8),
                                        conv_site("dup", 8, 16, 3, 6)};
  Json j = Json::object();
  Json entry = Json::object();
  entry["PE"] = 1;
  entry["SIMD"] = 1;
  j["dup"] = entry;
  EXPECT_THROW(FoldingConfig::from_json(j, sites), ConfigError);
}

TEST(FoldingJson, DistinctNamesRoundTrip) {
  const std::vector<LayerSite> sites = {conv_site("a", 4, 8, 3, 8),
                                        fc_site("b", 64, 10)};
  FoldingConfig cfg;
  cfg.folds = {LayerFold{2, 6}, LayerFold{2, 8}};
  const FoldingConfig back = FoldingConfig::from_json(cfg.to_json(sites), sites);
  EXPECT_EQ(back.folds, cfg.folds);
}

/// CNV with the paper's exits, styled folding, compiled — the shared
/// fixture of the cycle-agreement and reach-aware tests.
struct ReachFixture {
  CnvConfig cfg;
  BranchyModel model;
  std::vector<LayerSite> sites;
  FoldingConfig styled;
  Accelerator acc;
  ReachAwareOptions opts;

  explicit ReachFixture(double scale = 0.25) {
    Rng rng(17);
    cfg = CnvConfig{}.scaled(scale);
    model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
    sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
    styled = styled_folding(sites);
    acc = compile_accelerator(model, styled, AcceleratorConfig{});
    opts.baseline = styled;
    for (std::size_t e = 0; e < model.num_exits(); ++e) {
      opts.exit_after_block.push_back(model.exit(e).after_block);
    }
    opts.fixed_overhead =
        acc.total - folding_site_resources(sites, styled, opts.cost);
  }
};

// The single cycles-per-fold model: every compiled MVTU's cycle count must
// equal site_fold_cycles on the walk site it was emitted from, bitwise.
// MVTUs are emitted in walk order (finn/accelerator.cpp next_index), so the
// i-th MVTU module corresponds to sites[i]/folds[i].
TEST(FoldingCycleModel, CompiledMvtuCyclesMatchSiteFoldCyclesBitwise) {
  ReachFixture fx;
  std::vector<long> mvtu_cycles_in_order;
  for (const auto& m : fx.acc.modules) {
    if (m.kind == HlsModuleKind::kMvtu) {
      mvtu_cycles_in_order.push_back(m.cycles);
    }
  }
  ASSERT_EQ(mvtu_cycles_in_order.size(), fx.sites.size());
  for (std::size_t i = 0; i < fx.sites.size(); ++i) {
    EXPECT_EQ(mvtu_cycles_in_order[i],
              site_fold_cycles(fx.sites[i], fx.styled.folds[i]))
        << fx.sites[i].name;
  }
}

TEST(FoldingCycleModel, BalancedFoldingUsesTheSharedModel) {
  ReachFixture fx;
  long target = 0;
  for (const auto& m : fx.acc.modules) target = std::max(target, m.cycles);
  const FoldingConfig balanced = balanced_folding(fx.sites, target, 64, 64);
  for (std::size_t i = 0; i < fx.sites.size(); ++i) {
    EXPECT_LE(site_fold_cycles(fx.sites[i], balanced.folds[i]), target)
        << fx.sites[i].name;
  }
}

TEST(ReachAwareFolding, ZeroExitRegimeReproducesBaselineByteIdentically) {
  ReachFixture fx;
  const auto device = analysis::DeviceProfile::zcu104();
  const FoldingConfig ra =
      reach_aware_folding(fx.sites, {0.0, 0.0, 1.0}, device.caps, fx.opts);
  EXPECT_EQ(ra.folds, fx.styled.folds);
}

TEST(ReachAwareFolding, RejectsMalformedRegimes) {
  ReachFixture fx;
  const auto device = analysis::DeviceProfile::zcu104();
  // Wrong arity (the model has two exits, so regimes carry three entries).
  EXPECT_THROW(reach_aware_folding(fx.sites, {0.5, 0.5}, device.caps, fx.opts),
               Error);
  // Does not sum to 1.
  EXPECT_THROW(
      reach_aware_folding(fx.sites, {0.9, 0.5, 0.2}, device.caps, fx.opts),
      Error);
  // Negative fraction.
  EXPECT_THROW(
      reach_aware_folding(fx.sites, {1.2, -0.4, 0.2}, device.caps, fx.opts),
      Error);
}

// Property sweep: over regimes x budgets, every output must validate, pass
// the static dataflow rules, weakly dominate the styled baseline on gated
// throughput at equal-or-lower resource use, and respect the device budget.
TEST(ReachAwareFolding, PropertySweepWeaklyDominatesStyled) {
  ReachFixture fx;
  const auto device = analysis::DeviceProfile::zcu104();
  const double styled_site_lut =
      static_cast<double>((fx.acc.total - fx.opts.fixed_overhead).lut);

  // A budget tighter than the styled design itself: fixed overhead plus
  // three quarters of the styled site fabric (per axis, LUT-driven; the
  // other axes keep the device headroom).
  Resources tight = device.caps;
  tight.lut = fx.opts.fixed_overhead.lut +
              static_cast<long>(styled_site_lut * 0.75);

  const std::vector<std::vector<double>> regimes = {
      {0.7, 0.2, 0.1},
      {0.5, 0.3, 0.2},
      {1.0 / 3, 1.0 / 3, 1.0 / 3},
      {0.2, 0.3, 0.5},
      {0.9, 0.05, 0.05},
  };
  for (const auto& budget : {device.caps, tight}) {
    const bool is_tight = budget.lut != device.caps.lut;
    for (const auto& regime : regimes) {
      SCOPED_TRACE("regime " + std::to_string(regime[0]) + "/" +
                   std::to_string(regime[1]) + "/" + std::to_string(regime[2]) +
                   (is_tight ? " tight" : " device"));
      const FoldingConfig ra =
          reach_aware_folding(fx.sites, regime, budget, fx.opts);
      validate_folding(fx.sites, ra);

      const Accelerator acc_ra =
          compile_accelerator(fx.model, ra, AcceleratorConfig{});
      // Weak domination, resources: never above the styled accelerator on
      // any axis (so a fitting styled bitstream stays fitting).
      EXPECT_TRUE(acc_ra.total.fits_within(fx.acc.total));
      // Budget: the optimizer's follower penalty upper-bounds the compiled
      // pool/branch growth, so the whole accelerator fits the budget.
      EXPECT_TRUE(acc_ra.total.fits_within(budget));
      // Weak domination, gated throughput (exact, shared cycle model).
      const double ii_styled = gated_steady_ii(fx.acc, regime);
      const double ii_ra = gated_steady_ii(acc_ra, regime);
      EXPECT_LE(ii_ra, ii_styled);

      // Static dataflow rules R8-R14 must accept every emitted design.
      analysis::DataflowOptions dopts;
      dopts.device = device;
      const analysis::DataflowReport report =
          analysis::analyze_dataflow(acc_ra, regime, dopts);
      EXPECT_FALSE(report.lint.has_errors()) << report.lint.error_message();
    }
  }
}

// The optimizer's purpose: early-heavy regimes free post-branch fabric and
// reinvest it in the front end, strictly improving the gated II at
// equal-or-lower LUT on at least three regimes.
TEST(ReachAwareFolding, StrictlyImprovesEarlyHeavyRegimes) {
  ReachFixture fx;
  const auto device = analysis::DeviceProfile::zcu104();
  const std::vector<std::vector<double>> regimes = {
      {0.7, 0.2, 0.1}, {0.5, 0.3, 0.2}, {0.2, 0.3, 0.5}, {0.9, 0.05, 0.05}};
  int strict = 0;
  for (const auto& regime : regimes) {
    const FoldingConfig ra =
        reach_aware_folding(fx.sites, regime, device.caps, fx.opts);
    const Accelerator acc_ra =
        compile_accelerator(fx.model, ra, AcceleratorConfig{});
    const bool faster = gated_steady_ii(acc_ra, regime) <
                        gated_steady_ii(fx.acc, regime);
    const bool cheaper = acc_ra.total.lut <= fx.acc.total.lut;
    if (faster && cheaper) ++strict;
  }
  EXPECT_GE(strict, 3);
}

// The agreement harness must accept reach-aware designs: the site-level
// objective the optimizer minimized is exactly the gated II the
// transaction-level simulator measures.
TEST(ReachAwareFolding, CrossValidatesAgainstTheSimulator) {
  ReachFixture fx;
  const auto device = analysis::DeviceProfile::zcu104();
  analysis::CrossValidateOptions cv_opts;
  cv_opts.dataflow.device = device;
  for (const auto& regime :
       std::vector<std::vector<double>>{{0.5, 0.3, 0.2}, {0.2, 0.3, 0.5}}) {
    const FoldingConfig ra =
        reach_aware_folding(fx.sites, regime, device.caps, fx.opts);
    const Accelerator acc_ra =
        compile_accelerator(fx.model, ra, AcceleratorConfig{});
    const analysis::CrossValidation cv =
        analysis::cross_validate(acc_ra, regime, cv_opts);
    EXPECT_TRUE(cv.passed) << cv.summary() << "\n" << cv.lint.error_message();
  }
}

// End-to-end: the generator emits one reach-aware accelerator per regime
// for exit-bearing design points, with dense pre-assigned ids, verifier
// gating, and regime metadata that survives the JSON round trip; a
// reach-free spec stays byte-identical to the previous schema.
TEST(ReachAwareFolding, GeneratorEmitsGatedParetoRecords) {
  SyntheticSpec dataset;
  dataset.name = "reachtest";
  dataset.num_classes = 4;
  dataset.train_size = 64;
  dataset.test_size = 32;
  LibraryGenSpec spec;
  spec.dataset = dataset;
  spec.cnv = CnvConfig{}.scaled(0.125);
  spec.cnv.num_classes = dataset.num_classes;
  spec.exits = paper_exits_config(false);
  spec.variants = {ModelVariant::kNoExit, ModelVariant::kNotPrunedExits};
  spec.prune_rates_pct = {0};
  spec.conf_thresholds_pct = {0, 50};
  spec.initial_train.epochs = 1;
  spec.retrain.epochs = 1;
  spec.num_threads = 1;

  const Library plain = generate_library(spec);
  spec.reach_regimes = {{0.5, 0.3, 0.2}, {0.0, 0.0, 1.0}};
  const Library reach = generate_library(spec);

  // One extra accelerator per regime for the exit point only.
  ASSERT_EQ(plain.accelerators.size(), 2u);
  ASSERT_EQ(reach.accelerators.size(), 4u);
  // Ids are dense and pre-assigned: no-exit point keeps id 0; the exit
  // point's block is 1 (styled), 2 and 3 (reach regimes).
  EXPECT_EQ(reach.accelerators[0].id, 0);
  EXPECT_EQ(reach.accelerators[0].folding_mode, "styled");
  EXPECT_EQ(reach.accelerators[1].id, 1);
  EXPECT_EQ(reach.accelerators[1].folding_mode, "styled");
  EXPECT_EQ(reach.accelerators[2].id, 2);
  EXPECT_EQ(reach.accelerators[2].folding_mode, "reach");
  EXPECT_EQ(reach.accelerators[2].reach_regime,
            (std::vector<double>{0.5, 0.3, 0.2}));
  EXPECT_EQ(reach.accelerators[3].id, 3);
  EXPECT_EQ(reach.accelerators[3].folding_mode, "reach");

  // The styled records and rows are unchanged by the reach feature.
  EXPECT_EQ(plain.accelerators[1].resources.lut,
            reach.accelerators[1].resources.lut);
  // Reach accelerators never exceed their styled sibling's fabric.
  EXPECT_TRUE(reach.accelerators[2].resources.fits_within(
      reach.accelerators[1].resources));
  EXPECT_TRUE(reach.accelerators[3].resources.fits_within(
      reach.accelerators[1].resources));

  // Rows reference the reach accelerators (one per threshold each).
  int reach_rows = 0;
  for (const auto& e : reach.entries) {
    if (e.accel_id >= 2) ++reach_rows;
  }
  EXPECT_EQ(reach_rows, 4);

  // Round trip keeps the mode and regime.
  const Library back = Library::from_json(reach.to_json());
  EXPECT_EQ(back.accelerators[2].folding_mode, "reach");
  EXPECT_EQ(back.accelerators[2].reach_regime,
            (std::vector<double>{0.5, 0.3, 0.2}));
  EXPECT_EQ(back.accelerators[1].folding_mode, "styled");
  EXPECT_TRUE(back.accelerators[1].reach_regime.empty());
}

}  // namespace
}  // namespace adapex
