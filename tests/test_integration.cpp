// Integration tests across the whole stack: design-time flow -> runtime
// serving, streamlined inference of pruned models, and cross-validation of
// the analytical accelerator model against the event-driven simulator on
// real (trained, pruned) models.

#include <gtest/gtest.h>

#include <cmath>

#include "core/adapex.hpp"
#include "finn/streamline.hpp"

namespace adapex {
namespace {

// One shared tiny library: full design-time flow once per test binary.
struct Flow {
  LibraryGenSpec spec;
  Library library;

  Flow() {
    spec = make_gen_spec(cifar10_like_spec(), ExperimentScale::tiny());
    spec.prune_rates_pct = {0, 30, 60};
    spec.conf_thresholds_pct = {0, 40, 80};
    library = generate_library(spec);
  }
};

const Flow& flow() {
  static const Flow f;
  return f;
}

TEST(Integration, DesignThenServeEndToEnd) {
  const Library& lib = flow().library;
  EXPECT_GT(lib.reference_accuracy, 0.5);  // tiny scale trains decently now

  EdgeScenario scenario = scale_to_library(EdgeScenario{}, lib, 1.3);
  scenario.seed = 77;
  auto adapex = simulate_edge_runs(lib, {AdaptPolicy::kAdaPEx, 0.10}, scenario, 5);
  auto finn =
      simulate_edge_runs(lib, {AdaptPolicy::kStaticFinn, 0.10}, scenario, 5);
  // The structural headline: AdaPEx serves (nearly) everything where the
  // static accelerator drops, at a lower energy-delay product. (The QoE
  // comparison needs the early-exit model trained to the paper's
  // proportions, which the tiny test scale cannot afford — the bench-scale
  // Table I / Fig. 6 runs cover it.)
  EXPECT_LT(adapex.inference_loss_pct, finn.inference_loss_pct);
  EXPECT_GT(adapex.served, finn.served);
  EXPECT_LT(adapex.edp, finn.edp);
  // The manager never does worse than the best its eligible space allows.
  double best_eligible = 0.0;
  for (const auto& e : lib.entries) {
    if (e.variant != ModelVariant::kNoExit) {
      best_eligible = std::max(best_eligible, e.accuracy);
    }
  }
  EXPECT_GE(adapex.accuracy, best_eligible - 0.10);
}

TEST(Integration, AllPoliciesServeWithoutError) {
  const Library& lib = flow().library;
  EdgeScenario scenario = scale_to_library(EdgeScenario{}, lib, 1.1);
  scenario.seed = 78;
  for (AdaptPolicy p : {AdaptPolicy::kAdaPEx, AdaptPolicy::kPrOnly,
                        AdaptPolicy::kCtOnly, AdaptPolicy::kStaticFinn}) {
    auto m = simulate_edge_runs(lib, {p, 0.10}, scenario, 3);
    EXPECT_EQ(m.offered, m.served + m.dropped) << to_string(p);
    EXPECT_GT(m.accuracy, 0.0) << to_string(p);
    EXPECT_GT(m.avg_power_w, 0.0) << to_string(p);
  }
}

TEST(Integration, PrunedModelStreamlinesAndMatches) {
  // Train, prune, retrain, streamline — integer inference must still match
  // the float model on a pruned network (exercises pruning surgery +
  // threshold folding together).
  auto spec = flow().spec;
  SyntheticDataset data = make_synthetic(spec.dataset);
  Rng rng(spec.seed + 1);
  BranchyModel model = build_cnv_with_exits(spec.cnv, spec.exits, rng);
  TrainConfig tc = spec.initial_train;
  tc.epochs = 4;
  train_model(model, data.train, spec.dataset.flip_symmetry, tc);

  auto sites = walk_compute_layers(model, spec.accel.in_channels,
                                   spec.accel.image_size);
  PruneOptions popts;
  popts.rate = 0.5;
  popts.folding = styled_folding(sites);
  prune_model(model, popts);
  TrainConfig rt = spec.retrain;
  rt.epochs = 1;
  train_model(model, data.train, spec.dataset.flip_symmetry, rt);

  StreamlinedModel sm = streamline(model, 3, 32);
  std::vector<int> idx;
  for (int i = 0; i < 32; ++i) idx.push_back(i);
  Tensor x = data.test.batch_images(idx);
  auto fl = model.forward(x, false);
  auto iq = run_streamlined(sm, x);
  int mismatches = 0;
  for (int n = 0; n < 32; ++n) {
    int fa = 0, ia = 0;
    for (int k = 1; k < fl.back().dim(1); ++k) {
      if (fl.back().at2(n, k) > fl.back().at2(n, fa)) fa = k;
      if (iq.back().at2(n, k) > iq.back().at2(n, ia)) ia = k;
    }
    if (fa != ia) ++mismatches;
  }
  EXPECT_LE(mismatches, 1);
}

TEST(Integration, AnalyticThroughputTracksSimOnLibraryModels) {
  // Rebuild one pruned accelerator from the flow's spec and compare the
  // occupancy model's II against the backpressured transaction sim under
  // the library-measured exit fractions.
  auto spec = flow().spec;
  SyntheticDataset data = make_synthetic(spec.dataset);
  Rng rng(spec.seed + 2);
  BranchyModel model = build_cnv_with_exits(spec.cnv, spec.exits, rng);
  TrainConfig tc = spec.initial_train;
  tc.epochs = 3;
  train_model(model, data.train, spec.dataset.flip_symmetry, tc);
  auto sites = walk_compute_layers(model, 3, 32);
  auto folding = styled_folding(sites);
  Accelerator acc = compile_accelerator(model, folding, spec.accel);

  auto eval = evaluate_exits(model, data.test);
  auto stats = apply_threshold(eval, 0.4);
  auto perf = estimate_performance(acc, stats.exit_fraction, spec.power);

  // Deterministic interleaved exit stream approximating the fractions.
  std::vector<int> exits;
  for (int i = 0; i < 600; ++i) {
    const double u = (i % 100 + 0.5) / 100.0;
    double acc_frac = 0.0;
    int e = static_cast<int>(stats.exit_fraction.size()) - 1;
    for (std::size_t k = 0; k < stats.exit_fraction.size(); ++k) {
      acc_frac += stats.exit_fraction[k];
      if (u < acc_frac) {
        e = static_cast<int>(k);
        break;
      }
    }
    exits.push_back(e);
  }
  auto sim = simulate_pipeline(acc, exits);
  const double analytic_ii = acc.fclk_hz() / perf.ips;
  EXPECT_NEAR(sim.steady_ii_cycles, analytic_ii, 0.2 * analytic_ii);
}

TEST(Integration, LibrarySurvivesDiskRoundTripForServing) {
  const Library& lib = flow().library;
  const std::string path = "/tmp/adapex_integration_lib.json";
  lib.save(path);
  Library loaded = Library::load(path);
  EdgeScenario scenario = scale_to_library(EdgeScenario{}, loaded, 1.2);
  scenario.seed = 79;
  auto a = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, scenario);
  auto b = simulate_edge(loaded, {AdaptPolicy::kAdaPEx, 0.10}, scenario);
  EXPECT_EQ(a.served, b.served);
  EXPECT_DOUBLE_EQ(a.qoe, b.qoe);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adapex
