// Tests for the Library data model, serialization, and the generator
// (run at tiny scale with reduced sweeps to stay fast).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/scale.hpp"
#include "library/cache.hpp"
#include "library/generator.hpp"

namespace adapex {
namespace {

LibraryGenSpec tiny_spec() {
  auto spec = make_gen_spec(cifar10_like_spec(), ExperimentScale::tiny());
  spec.prune_rates_pct = {0, 50};
  spec.conf_thresholds_pct = {0, 50, 100};
  return spec;
}

// Generation is expensive; share one library across tests in this file.
const Library& shared_library() {
  static const Library lib = generate_library(tiny_spec());
  return lib;
}

TEST(LibraryModel, VariantStringsRoundTrip) {
  for (ModelVariant v : {ModelVariant::kNoExit, ModelVariant::kPrunedExits,
                         ModelVariant::kNotPrunedExits}) {
    EXPECT_EQ(model_variant_from_string(to_string(v)), v);
  }
  EXPECT_THROW(model_variant_from_string("bogus"), ParseError);
}

TEST(LibraryGen, EntryInventory) {
  const Library& lib = shared_library();
  // no_exit: 2 rates x 1 entry. pruned_exits: rate 50 only (rate 0 deduped)
  // x 3 thresholds. not_pruned_exits: 2 rates x 3 thresholds.
  EXPECT_EQ(lib.entries.size(), 2u + 3u + 6u);
  EXPECT_EQ(lib.accelerators.size(), 2u + 1u + 2u);
  EXPECT_GT(lib.reference_accuracy, 0.2);  // well above 10% chance
  for (const auto& e : lib.entries) {
    EXPECT_GT(e.ips, 0.0);
    EXPECT_GT(e.latency_ms, 0.0);
    EXPECT_GT(e.peak_power_w, lib.static_power_w);
    EXPECT_GE(e.accuracy, 0.0);
    EXPECT_LE(e.accuracy, 1.0);
    // Exit fractions sum to 1.
    double sum = 0.0;
    for (double f : e.exit_fractions) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    if (e.variant == ModelVariant::kNoExit) {
      EXPECT_EQ(e.conf_threshold_pct, -1);
      EXPECT_EQ(e.exit_fractions.size(), 1u);
    } else {
      EXPECT_EQ(e.exit_fractions.size(), 3u);
    }
  }
}

TEST(LibraryGen, PrunedAcceleratorIsFasterAndSmaller) {
  const Library& lib = shared_library();
  const LibraryEntry* full = nullptr;
  const LibraryEntry* pruned = nullptr;
  for (const auto& e : lib.entries) {
    if (e.variant != ModelVariant::kNoExit) continue;
    if (e.prune_rate_pct == 0) full = &e;
    if (e.prune_rate_pct == 50) pruned = &e;
  }
  ASSERT_NE(full, nullptr);
  ASSERT_NE(pruned, nullptr);
  EXPECT_GT(pruned->ips, full->ips);
  EXPECT_LT(pruned->latency_ms, full->latency_ms);
  EXPECT_LE(pruned->accuracy, full->accuracy + 0.1);  // usually lower
  const auto& rfull = lib.accelerator(full->accel_id).resources;
  const auto& rpruned = lib.accelerator(pruned->accel_id).resources;
  // Pruning can migrate shrunken weight memories from BRAM to LUTRAM, so
  // compare the aggregate footprint (1 BRAM18 ~ 288 LUT-equivalents).
  EXPECT_LT(rpruned.lut + 288 * rpruned.bram, rfull.lut + 288 * rfull.bram);
}

TEST(LibraryGen, LowerThresholdNeverLowersIps) {
  const Library& lib = shared_library();
  // For a fixed accelerator, IPS is non-increasing in the threshold
  // (higher threshold -> fewer early exits -> more backbone work).
  for (const auto& a : lib.accelerators) {
    if (a.variant == ModelVariant::kNoExit) continue;
    double prev_ips = -1.0;
    for (const auto& e : lib.entries) {
      if (e.accel_id != a.id) continue;
      if (prev_ips >= 0.0) {
        EXPECT_LE(e.ips, prev_ips + 1e-6);
      }
      prev_ips = e.ips;
    }
  }
}

TEST(LibraryModel, JsonRoundTrip) {
  const Library& lib = shared_library();
  const std::string text = lib.to_json().dump(1);
  Library parsed = Library::from_json(Json::parse(text));
  ASSERT_EQ(parsed.entries.size(), lib.entries.size());
  ASSERT_EQ(parsed.accelerators.size(), lib.accelerators.size());
  EXPECT_DOUBLE_EQ(parsed.reference_accuracy, lib.reference_accuracy);
  for (std::size_t i = 0; i < lib.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].variant, lib.entries[i].variant);
    EXPECT_EQ(parsed.entries[i].prune_rate_pct, lib.entries[i].prune_rate_pct);
    EXPECT_EQ(parsed.entries[i].conf_threshold_pct,
              lib.entries[i].conf_threshold_pct);
    EXPECT_DOUBLE_EQ(parsed.entries[i].ips, lib.entries[i].ips);
    EXPECT_DOUBLE_EQ(parsed.entries[i].accuracy, lib.entries[i].accuracy);
  }
  EXPECT_EQ(parsed.accelerator(0).resources.lut,
            lib.accelerator(0).resources.lut);
}

TEST(LibraryModel, SaveLoadFile) {
  const Library& lib = shared_library();
  const std::string path = "/tmp/adapex_test_library.json";
  lib.save(path);
  Library loaded = Library::load(path);
  EXPECT_EQ(loaded.entries.size(), lib.entries.size());
  std::remove(path.c_str());
}

TEST(LibraryCache, GeneratesThenLoads) {
  const std::string dir = "/tmp/adapex_test_cache";
  std::filesystem::remove_all(dir);
  auto spec = tiny_spec();
  spec.prune_rates_pct = {0};
  spec.conf_thresholds_pct = {50};
  spec.variants = {ModelVariant::kNoExit};
  Library first = generate_or_load_library(spec, dir);
  // Second call must hit the cache (same content, no regeneration): verify
  // by checking file exists and contents match.
  const std::string key = library_cache_key(spec);
  EXPECT_TRUE(std::filesystem::exists(dir + "/library_" + key + ".json"));
  Library second = generate_or_load_library(spec, dir);
  EXPECT_EQ(first.entries.size(), second.entries.size());
  EXPECT_DOUBLE_EQ(first.reference_accuracy, second.reference_accuracy);
  std::filesystem::remove_all(dir);
}

TEST(LibraryCache, KeyDependsOnSpecKnobs) {
  auto a = tiny_spec();
  auto b = tiny_spec();
  EXPECT_EQ(library_cache_key(a), library_cache_key(b));
  b.seed += 1;
  EXPECT_NE(library_cache_key(a), library_cache_key(b));
  auto c = tiny_spec();
  c.prune_rates_pct.push_back(85);
  EXPECT_NE(library_cache_key(a), library_cache_key(c));
}

TEST(LibraryGen, RejectsClassMismatch) {
  auto spec = tiny_spec();
  spec.cnv.num_classes = 7;  // dataset has 10
  EXPECT_THROW(generate_library(spec), Error);
}

}  // namespace
}  // namespace adapex
