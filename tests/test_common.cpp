// Tests for the common utilities: JSON parse/dump, deterministic RNG, and
// table formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace adapex {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_number(), 3.5);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, ParseNested) {
  Json j = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_EQ(j.at("a").as_array()[2].at("b").as_string(), "c");
  EXPECT_TRUE(j.at("d").at("e").is_null());
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(Json::parse("tru"), ParseError);
  EXPECT_THROW(Json::parse("1 2"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
}

TEST(Json, DumpParseRoundTrip) {
  Json j = Json::object();
  j["name"] = "adapex";
  j["pi"] = 3.14159;
  j["n"] = 42;
  j["flag"] = true;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(nullptr);
  j["mixed"] = std::move(arr);
  for (int indent : {-1, 0, 2}) {
    Json back = Json::parse(j.dump(indent));
    EXPECT_EQ(back.at("name").as_string(), "adapex");
    EXPECT_DOUBLE_EQ(back.at("pi").as_number(), 3.14159);
    EXPECT_EQ(back.at("n").as_int(), 42);
    EXPECT_TRUE(back.at("flag").as_bool());
    EXPECT_EQ(back.at("mixed").as_array().size(), 3u);
  }
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["apple"] = 2;
  j["mid"] = 3;
  const std::string s = j.dump();
  EXPECT_LT(s.find("zebra"), s.find("apple"));
  EXPECT_LT(s.find("apple"), s.find("mid"));
}

TEST(Json, EscapedStringsRoundTrip) {
  Json j = Json("quote\" backslash\\ tab\t newline\n");
  Json back = Json::parse(j.dump());
  EXPECT_EQ(back.as_string(), "quote\" backslash\\ tab\t newline\n");
}

TEST(Json, UnicodeEscapeDecoding) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");  // é
}

TEST(Json, TypeMismatchThrows) {
  Json j = Json::parse("[1]");
  EXPECT_THROW(j.as_object(), Error);
  EXPECT_THROW(j.as_string(), Error);
  EXPECT_THROW(Json::parse("1.5").as_int(), Error);
  EXPECT_THROW(Json::parse("{}").at("missing"), ParseError);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMomentsReasonable) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(17);
  Rng child = a.fork();
  // The fork must not replay the parent's sequence.
  Rng b(17);
  b.fork();
  EXPECT_EQ(a.next_u64(), b.next_u64());  // parents stay in sync
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (child.next_u64() == a.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Table, AlignmentAndCsv) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_EQ(t.csv(), "name,value\na,1\nlonger-name,2.5\n");
}

TEST(Table, ArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(1.0, 0), "1");
  EXPECT_EQ(TextTable::num(-0.5, 3), "-0.500");
}

TEST(Files, WriteReadRoundTrip) {
  const std::string path = "/tmp/adapex_test_file.txt";
  write_file(path, "hello\nworld");
  EXPECT_EQ(read_file(path), "hello\nworld");
  std::remove(path.c_str());
  EXPECT_THROW(read_file("/nonexistent/path/x"), Error);
}

}  // namespace
}  // namespace adapex
