// Unit tests for the tensor type and numeric kernels, including numerical
// gradient checks of every backward pass against finite differences.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace adapex {
namespace {

TEST(Tensor, ShapeAndAccess) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.numel(), 2u * 3 * 4 * 5);
  EXPECT_EQ(t.ndim(), 4);
  t.at4(1, 2, 3, 4) = 7.5f;
  EXPECT_FLOAT_EQ(t[t.numel() - 1], 7.5f);
  EXPECT_FLOAT_EQ(t.at4(0, 0, 0, 0), 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.dim(1), 4);
  for (std::size_t i = 0; i < r.numel(); ++i) {
    EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
  }
}

TEST(Tensor, ReshapeRejectsWrongCount) {
  Tensor t({2, 6});
  EXPECT_THROW(t.reshaped({5, 5}), Error);
}

TEST(Tensor, AddAndScale) {
  Tensor a({3});
  Tensor b({3});
  a[0] = 1; a[1] = 2; a[2] = 3;
  b[0] = 10; b[1] = 20; b[2] = 30;
  a.add_(b);
  a.scale_(0.5f);
  EXPECT_FLOAT_EQ(a[0], 5.5f);
  EXPECT_FLOAT_EQ(a[2], 16.5f);
}

TEST(Tensor, AddShapeMismatchThrows) {
  Tensor a({3}), b({4});
  EXPECT_THROW(a.add_(b), Error);
}

TEST(Ops, OutDim) {
  EXPECT_EQ(ops::out_dim(32, 3, 1), 30);
  EXPECT_EQ(ops::out_dim(28, 2, 2), 14);
  EXPECT_EQ(ops::out_dim(12, 7, 7), 1);
  EXPECT_THROW(ops::out_dim(2, 3, 1), Error);
}

TEST(Ops, GemmMatchesManual) {
  // A[2,3] * B[3,2]
  std::vector<float> a = {1, 2, 3, 4, 5, 6};
  std::vector<float> b = {7, 8, 9, 10, 11, 12};
  std::vector<float> c(4, 0.0f);
  ops::gemm_accumulate(a.data(), b.data(), c.data(), 2, 3, 2);
  EXPECT_FLOAT_EQ(c[0], 58);
  EXPECT_FLOAT_EQ(c[1], 64);
  EXPECT_FLOAT_EQ(c[2], 139);
  EXPECT_FLOAT_EQ(c[3], 154);
}

TEST(Ops, GemmTransposedVariantsAgree) {
  Rng rng(7);
  const int m = 4, k = 5, n = 3;
  std::vector<float> a(m * k), b(k * n), at(k * m), bt(n * k);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) {
      a[i * k + j] = static_cast<float>(rng.normal());
      at[j * m + i] = a[i * k + j];
    }
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) {
      b[i * n + j] = static_cast<float>(rng.normal());
      bt[j * k + i] = b[i * n + j];
    }
  }
  std::vector<float> c1(m * n, 0.0f), c2(m * n, 0.0f), c3(m * n, 0.0f);
  ops::gemm_accumulate(a.data(), b.data(), c1.data(), m, k, n);
  ops::gemm_at_b_accumulate(at.data(), b.data(), c2.data(), m, k, n);
  ops::gemm_a_bt_accumulate(a.data(), bt.data(), c3.data(), m, k, n);
  for (int i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-5f);
    EXPECT_NEAR(c1[i], c3[i], 1e-5f);
  }
}

TEST(Ops, Im2ColRoundTripAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> — the adjoint property that makes the
  // conv backward correct.
  Rng rng(11);
  const int c = 2, h = 6, w = 6, k = 3;
  const int oh = h - k + 1, ow = w - k + 1;
  Tensor x({c, h, w});
  x.randn_(rng, 1.0f);
  std::vector<float> col(static_cast<std::size_t>(c * k * k) * oh * ow);
  ops::im2col(x.data(), c, h, w, k, col.data());
  std::vector<float> y(col.size());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  Tensor back({c, h, w});
  ops::col2im_accumulate(y.data(), c, h, w, k, back.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) lhs += static_cast<double>(col[i]) * y[i];
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Ops, ConvForwardMatchesDirectLoop) {
  Rng rng(3);
  const int n = 2, cin = 3, h = 5, w = 5, f = 4, k = 3;
  Tensor x({n, cin, h, w});
  x.randn_(rng, 1.0f);
  Tensor wt({f, cin, k, k});
  wt.randn_(rng, 0.5f);
  Tensor bias({f});
  bias.randn_(rng, 0.1f);
  std::vector<float> scratch;
  Tensor y = ops::conv2d_forward(x, wt, bias, scratch);
  ASSERT_EQ(y.shape(), (std::vector<int>{n, f, 3, 3}));
  for (int ni = 0; ni < n; ++ni) {
    for (int fi = 0; fi < f; ++fi) {
      for (int oy = 0; oy < 3; ++oy) {
        for (int ox = 0; ox < 3; ++ox) {
          double acc = bias[static_cast<std::size_t>(fi)];
          for (int ci = 0; ci < cin; ++ci) {
            for (int ky = 0; ky < k; ++ky) {
              for (int kx = 0; kx < k; ++kx) {
                acc += static_cast<double>(x.at4(ni, ci, oy + ky, ox + kx)) *
                       wt.at4(fi, ci, ky, kx);
              }
            }
          }
          EXPECT_NEAR(y.at4(ni, fi, oy, ox), acc, 1e-4);
        }
      }
    }
  }
}

TEST(Ops, ConvBackwardGradcheck) {
  Rng rng(5);
  const int n = 1, cin = 2, h = 5, w = 5, f = 3, k = 3;
  Tensor x({n, cin, h, w});
  x.randn_(rng, 1.0f);
  Tensor wt({f, cin, k, k});
  wt.randn_(rng, 0.5f);
  Tensor bias;
  std::vector<float> scratch;

  // Loss = sum(conv(x, w)); analytic gradients.
  Tensor y = ops::conv2d_forward(x, wt, bias, scratch);
  Tensor dy(y.shape());
  dy.fill(1.0f);
  Tensor dx, dw(wt.shape()), db;
  ops::conv2d_backward(x, wt, dy, dx, dw, db, scratch);

  // Finite differences on a handful of elements of x and w.
  const float eps = 1e-3f;
  auto loss_of = [&](void) {
    Tensor out = ops::conv2d_forward(x, wt, bias, scratch);
    return out.sum();
  };
  for (std::size_t i : {0ul, 7ul, 23ul, x.numel() - 1}) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = loss_of();
    x[i] = orig - eps;
    const double lm = loss_of();
    x[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), dx[i], 2e-2) << "dx at " << i;
  }
  for (std::size_t i : {0ul, 11ul, wt.numel() - 1}) {
    const float orig = wt[i];
    wt[i] = orig + eps;
    const double lp = loss_of();
    wt[i] = orig - eps;
    const double lm = loss_of();
    wt[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), dw[i], 2e-2) << "dw at " << i;
  }
}

TEST(Ops, LinearBackwardGradcheck) {
  Rng rng(9);
  const int n = 3, in = 4, out = 2;
  Tensor x({n, in});
  x.randn_(rng, 1.0f);
  Tensor wt({out, in});
  wt.randn_(rng, 0.5f);
  Tensor bias;
  Tensor y = ops::linear_forward(x, wt, bias);
  Tensor dy(y.shape());
  dy.fill(1.0f);
  Tensor dx, dw(wt.shape()), db;
  ops::linear_backward(x, wt, dy, dx, dw, db);

  const float eps = 1e-3f;
  auto loss_of = [&](void) { return ops::linear_forward(x, wt, bias).sum(); };
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = loss_of();
    x[i] = orig - eps;
    const double lm = loss_of();
    x[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), dx[i], 1e-2);
  }
  for (std::size_t i = 0; i < wt.numel(); ++i) {
    const float orig = wt[i];
    wt[i] = orig + eps;
    const double lp = loss_of();
    wt[i] = orig - eps;
    const double lm = loss_of();
    wt[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), dw[i], 1e-2);
  }
}

TEST(Ops, MaxPoolForwardBackward) {
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  std::vector<int> argmax;
  Tensor y = ops::maxpool_forward(x, 2, 2, argmax);
  ASSERT_EQ(y.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 5);
  EXPECT_FLOAT_EQ(y[1], 7);
  EXPECT_FLOAT_EQ(y[2], 13);
  EXPECT_FLOAT_EQ(y[3], 15);
  Tensor dy(y.shape());
  dy.fill(1.0f);
  Tensor dx = ops::maxpool_backward(x, dy, 2, 2, argmax);
  EXPECT_FLOAT_EQ(dx[5], 1.0f);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[15], 1.0f);
  double total = dx.sum();
  EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(2);
  Tensor logits({4, 10});
  logits.randn_(rng, 3.0f);
  Tensor p = ops::softmax(logits);
  for (int n = 0; n < 4; ++n) {
    double s = 0.0;
    for (int k = 0; k < 10; ++k) {
      EXPECT_GE(p.at2(n, k), 0.0f);
      s += p.at2(n, k);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxNumericallyStableForLargeLogits) {
  Tensor logits({1, 3});
  logits[0] = 1000.0f;
  logits[1] = 999.0f;
  logits[2] = -1000.0f;
  Tensor p = ops::softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[0], p[1]);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-5);
}

TEST(Ops, CrossEntropyGradcheck) {
  Rng rng(13);
  Tensor logits({3, 5});
  logits.randn_(rng, 1.0f);
  std::vector<int> labels = {0, 3, 4};
  Tensor grad;
  const double loss = ops::cross_entropy(logits, labels, grad);
  EXPECT_GT(loss, 0.0);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor g;
    const float orig = logits[i];
    logits[i] = orig + eps;
    const double lp = ops::cross_entropy(logits, labels, g);
    logits[i] = orig - eps;
    const double lm = ops::cross_entropy(logits, labels, g);
    logits[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), grad[i], 1e-3);
  }
}

TEST(Ops, CrossEntropyPerfectPredictionLowLoss) {
  Tensor logits({1, 3});
  logits[0] = 20.0f;
  logits[1] = 0.0f;
  logits[2] = 0.0f;
  Tensor grad;
  EXPECT_LT(ops::cross_entropy(logits, {0}, grad), 1e-6);
}

}  // namespace
}  // namespace adapex
