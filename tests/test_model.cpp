// Tests for the CNV builder, exit configurations, model serialization
// (ONNX-export stand-in), and the FINN streamlining transformation with its
// integer-threshold inference path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "data/dataset.hpp"
#include "finn/streamline.hpp"
#include "model/cnv.hpp"
#include "model/serialize.hpp"
#include "nn/eval.hpp"
#include "nn/trainer.hpp"

namespace adapex {
namespace {

TEST(Cnv, ScaledWidths) {
  CnvConfig cfg = CnvConfig{}.scaled(0.25);
  EXPECT_EQ(cfg.conv_channels,
            (std::vector<int>{16, 16, 32, 32, 64, 64}));
  EXPECT_EQ(cfg.fc_features, (std::vector<int>{128, 128}));
  // Widths stay multiples of 4 and never drop below 4.
  CnvConfig tiny = CnvConfig{}.scaled(0.01);
  for (int c : tiny.conv_channels) EXPECT_EQ(c, 4);
  EXPECT_THROW(CnvConfig{}.scaled(0.0), Error);
}

TEST(Cnv, BlockGeometry) {
  CnvConfig cfg = CnvConfig{}.scaled(0.25);
  EXPECT_EQ(cnv_block_out_dims(cfg), (std::vector<int>{14, 5, 1}));
  EXPECT_EQ(cnv_block_out_channels(cfg), (std::vector<int>{16, 32, 64}));
}

TEST(Cnv, ForwardShapesAllExitOps) {
  Rng rng(1);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  for (ExitOps ops : {ExitOps::kConvPoolFc, ExitOps::kPoolFc, ExitOps::kFc}) {
    ExitsConfig exits;
    exits.exits = {ExitSpec{0, ops}, ExitSpec{1, ops}};
    BranchyModel model = build_cnv_with_exits(cfg, exits, rng);
    Tensor x({2, 3, 32, 32});
    x.randn_(rng, 1.0f);
    auto outs = model.forward(x, false);
    ASSERT_EQ(outs.size(), 3u) << to_string(ops);
    for (const auto& o : outs) {
      EXPECT_EQ(o.shape(), (std::vector<int>{2, cfg.num_classes}));
    }
  }
}

TEST(Cnv, ExitsConfigJsonRoundTrip) {
  ExitsConfig cfg = paper_exits_config(true);
  Json j = cfg.to_json();
  ExitsConfig back = ExitsConfig::from_json(Json::parse(j.dump()));
  ASSERT_EQ(back.exits.size(), 2u);
  EXPECT_EQ(back.exits[0].after_block, 0);
  EXPECT_EQ(back.exits[1].after_block, 1);
  EXPECT_EQ(back.exits[0].ops, ExitOps::kConvPoolFc);
  EXPECT_TRUE(back.prune_exits);
  EXPECT_THROW(exit_ops_from_string("nope"), ConfigError);
}

TEST(Cnv, InvalidExitPlacementRejected) {
  Rng rng(2);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  ExitsConfig exits;
  exits.exits = {ExitSpec{2, ExitOps::kFc}};  // after the final block
  EXPECT_THROW(build_cnv_with_exits(cfg, exits, rng), Error);
}

TEST(Serialize, RoundTripPreservesInference) {
  Rng rng(3);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  // Give batchnorm/actquant non-trivial state via a short training step.
  SyntheticSpec spec = cifar10_like_spec();
  spec.train_size = 40;
  spec.test_size = 10;
  SyntheticDataset data = make_synthetic(spec);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  train_model(model, data.train, true, tc);

  const std::string bytes = serialize_model(model);
  BranchyModel loaded = deserialize_model(bytes);

  Tensor x = data.test.batch_images({0, 1, 2, 3});
  auto a = model.forward(x, false);
  auto b = loaded.forward(x, false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    ASSERT_EQ(a[e].shape(), b[e].shape());
    for (std::size_t i = 0; i < a[e].numel(); ++i) {
      ASSERT_FLOAT_EQ(a[e][i], b[e][i]) << "exit " << e << " elem " << i;
    }
  }
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(4);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  BranchyModel model = build_cnv(cfg, rng);
  const std::string path = "/tmp/adapex_test_model.adpx";
  save_model(model, path);
  BranchyModel loaded = load_model(path);
  EXPECT_EQ(loaded.num_blocks(), model.num_blocks());
  EXPECT_EQ(loaded.num_exits(), 0u);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsCorruptedInput) {
  Rng rng(5);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  BranchyModel model = build_cnv(cfg, rng);
  std::string bytes = serialize_model(model);
  // Bad magic.
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_THROW(deserialize_model(bad), ParseError);
  // Truncated blob.
  EXPECT_THROW(deserialize_model(bytes.substr(0, bytes.size() - 17)), Error);
  // Too short entirely.
  EXPECT_THROW(deserialize_model("AD"), Error);
}

TEST(Streamline, IntegerInferenceMatchesFloatModel) {
  Rng rng(6);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  SyntheticSpec spec = cifar10_like_spec();
  spec.train_size = 80;
  spec.test_size = 40;
  SyntheticDataset data = make_synthetic(spec);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.lr = 5e-3;
  train_model(model, data.train, true, tc);

  StreamlinedModel sm = streamline(model, 3, 32);
  std::vector<int> idx;
  for (int i = 0; i < data.test.size(); ++i) idx.push_back(i);
  Tensor x = data.test.batch_images(idx);
  auto fl = model.forward(x, false);
  auto iq = run_streamlined(sm, x);
  ASSERT_EQ(fl.size(), iq.size());

  // The integer-threshold path must agree with the float path: identical
  // predictions on (nearly) all samples and closely matching logits. Tiny
  // disagreements can only come from float-vs-double boundary rounding.
  for (std::size_t e = 0; e < fl.size(); ++e) {
    ASSERT_EQ(fl[e].shape(), iq[e].shape());
    int pred_mismatch = 0;
    double max_diff = 0.0;
    for (int n = 0; n < fl[e].dim(0); ++n) {
      int fa = 0, ia = 0;
      for (int k = 0; k < fl[e].dim(1); ++k) {
        max_diff = std::max(
            max_diff, std::abs(static_cast<double>(fl[e].at2(n, k)) -
                               iq[e].at2(n, k)));
        if (fl[e].at2(n, k) > fl[e].at2(n, fa)) fa = k;
        if (iq[e].at2(n, k) > iq[e].at2(n, ia)) ia = k;
      }
      if (fa != ia) ++pred_mismatch;
    }
    EXPECT_LE(pred_mismatch, 1) << "exit " << e;
    EXPECT_LT(max_diff, 0.05) << "exit " << e;
  }
}

TEST(Streamline, ThresholdCountMatchesActivationBits) {
  Rng rng(7);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  BranchyModel model = build_cnv(cfg, rng);
  StreamlinedModel sm = streamline(model, 3, 32);
  ASSERT_EQ(sm.blocks.size(), 3u);
  int mvtu_with_thresholds = 0, raw_output = 0;
  for (const auto& block : sm.blocks) {
    for (const auto& op : block) {
      if (op.kind != StreamlinedOp::Kind::kMvtu) continue;
      if (op.levels > 0) {
        ++mvtu_with_thresholds;
        EXPECT_EQ(op.levels, 3);  // 2-bit activations: levels 0..3
        EXPECT_EQ(op.thresholds.size(),
                  static_cast<std::size_t>(op.out_channels));
        for (const auto& tch : op.thresholds) EXPECT_EQ(tch.size(), 3u);
      } else {
        ++raw_output;
        EXPECT_EQ(op.out_scale.size(),
                  static_cast<std::size_t>(op.out_channels));
      }
    }
  }
  EXPECT_EQ(mvtu_with_thresholds, 8);  // 6 convs + 2 hidden fcs
  EXPECT_EQ(raw_output, 1);            // final classifier
}

TEST(Streamline, RejectsNonTernaryWeights) {
  Rng rng(8);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  cfg.weight_bits = 4;
  BranchyModel model = build_cnv(cfg, rng);
  EXPECT_THROW(streamline(model, 3, 32), ConfigError);
}

}  // namespace
}  // namespace adapex
