// Tests for the Runtime Manager and the edge-serving simulation, using a
// hand-built library so behaviour is exactly controlled.

#include <gtest/gtest.h>

#include "edge/simulation.hpp"
#include "runtime/manager.hpp"

namespace adapex {
namespace {

LibraryEntry entry(int accel, ModelVariant v, int rate, int ct, double acc,
                   double ips, double lat_ms, double power_w, double e_j) {
  LibraryEntry e;
  e.accel_id = accel;
  e.variant = v;
  e.prune_rate_pct = rate;
  e.conf_threshold_pct = ct;
  e.accuracy = acc;
  e.exit_fractions = v == ModelVariant::kNoExit
                         ? std::vector<double>{1.0}
                         : std::vector<double>{0.5, 0.5};
  e.ips = ips;
  e.latency_ms = lat_ms;
  e.peak_power_w = power_w;
  e.energy_per_inf_j = e_j;
  return e;
}

/// A small controlled library: reference accuracy 0.90.
///  accel 0: no-exit rate 0  (acc .90, 100 ips)
///  accel 1: no-exit rate 50 (acc .70, 300 ips)
///  accel 2: EE not-pruned rate 0, ct 50/5 (acc .88/.84, 120/200 ips)
///  accel 3: EE not-pruned rate 50, ct 50/5 (acc .82/.78, 350/500 ips)
Library controlled_library() {
  Library lib;
  lib.dataset = "controlled";
  lib.reference_accuracy = 0.90;
  lib.static_power_w = 0.7;
  for (int id = 0; id < 4; ++id) {
    AcceleratorRecord a;
    a.id = id;
    a.variant = id < 2 ? ModelVariant::kNoExit : ModelVariant::kNotPrunedExits;
    a.prune_rate_pct = (id % 2) * 50;
    a.reconfig_ms = 145.0;
    lib.accelerators.push_back(a);
  }
  lib.entries = {
      entry(0, ModelVariant::kNoExit, 0, -1, 0.90, 100, 6.0, 1.16, 0.006),
      entry(1, ModelVariant::kNoExit, 50, -1, 0.70, 300, 2.0, 1.00, 0.002),
      entry(2, ModelVariant::kNotPrunedExits, 0, 50, 0.88, 120, 5.0, 1.35,
            0.005),
      entry(2, ModelVariant::kNotPrunedExits, 0, 5, 0.84, 200, 3.0, 1.30,
            0.004),
      entry(3, ModelVariant::kNotPrunedExits, 50, 50, 0.82, 350, 1.8, 1.20,
            0.002),
      entry(3, ModelVariant::kNotPrunedExits, 50, 5, 0.78, 500, 1.2, 1.18,
            0.0015),
  };
  return lib;
}

TEST(RuntimeManager, EligibilityPerPolicy) {
  const Library lib = controlled_library();
  EXPECT_EQ(RuntimeManager(lib, {AdaptPolicy::kAdaPEx, 0.1}).eligible().size(),
            4u);
  EXPECT_EQ(RuntimeManager(lib, {AdaptPolicy::kPrOnly, 0.1}).eligible().size(),
            2u);
  EXPECT_EQ(RuntimeManager(lib, {AdaptPolicy::kCtOnly, 0.1}).eligible().size(),
            2u);
  EXPECT_EQ(
      RuntimeManager(lib, {AdaptPolicy::kStaticFinn, 0.1}).eligible().size(),
      1u);
}

TEST(RuntimeManager, PicksMostAccurateFeasible) {
  const Library lib = controlled_library();
  RuntimeManager mgr(lib, {AdaptPolicy::kAdaPEx, 0.10});
  // Low workload: most accurate entry above 0.81 (= 0.9 * 0.9) -> acc .88.
  mgr.select(50.0);
  EXPECT_DOUBLE_EQ(mgr.current().accuracy, 0.88);
  // Workload 300: only the rate-50 EE entries sustain it; acc .82 wins.
  mgr.select(300.0);
  EXPECT_DOUBLE_EQ(mgr.current().accuracy, 0.82);
  // Workload 450: only ct 5 (500 ips), below accuracy bar -> best effort:
  // fastest accuracy-OK entry. 0.78 < 0.81, so feasible set is empty and
  // the manager maximizes throughput among accuracy-OK entries -> 0.82/350.
  mgr.select(450.0);
  EXPECT_DOUBLE_EQ(mgr.current().accuracy, 0.82);
}

TEST(RuntimeManager, ThresholdSwitchIsFreeReconfigIsNot) {
  const Library lib = controlled_library();
  RuntimeManager mgr(lib, {AdaptPolicy::kAdaPEx, 0.10});
  mgr.select(50.0);  // accel 2 (ct 50)
  EXPECT_EQ(mgr.current().accel_id, 2);
  // Move within the same accelerator: workload 150 -> ct 5 on accel 2.
  Decision d1 = mgr.select(150.0);
  EXPECT_EQ(mgr.current().accel_id, 2);
  EXPECT_EQ(mgr.current().conf_threshold_pct, 5);
  EXPECT_FALSE(d1.reconfigure);
  // Move to accel 3: reconfiguration.
  Decision d2 = mgr.select(300.0);
  EXPECT_EQ(mgr.current().accel_id, 3);
  EXPECT_TRUE(d2.reconfigure);
  EXPECT_DOUBLE_EQ(d2.reconfig_ms, 145.0);
}

TEST(RuntimeManager, StaticFinnNeverMoves) {
  const Library lib = controlled_library();
  RuntimeManager mgr(lib, {AdaptPolicy::kStaticFinn, 0.10});
  for (double w : {10.0, 200.0, 1000.0}) {
    Decision d = mgr.select(w);
    EXPECT_FALSE(d.reconfigure);
    EXPECT_EQ(mgr.current().prune_rate_pct, 0);
    EXPECT_EQ(mgr.current().variant, ModelVariant::kNoExit);
  }
}

TEST(RuntimeManager, AccuracyBarRelaxesGracefully) {
  const Library lib = controlled_library();
  // Impossible bar (loss 0 with reference 0.90 -> only the 0.90 entry, which
  // is no-exit and ineligible for AdaPEx): falls back to most accurate.
  RuntimeManager mgr(lib, {AdaptPolicy::kAdaPEx, 0.0});
  mgr.select(50.0);
  EXPECT_DOUBLE_EQ(mgr.current().accuracy, 0.88);
}

TEST(EdgeSim, NoOverloadMeansNoLoss) {
  const Library lib = controlled_library();
  EdgeScenario sc;
  sc.cameras = 2;
  sc.ips_per_camera = 10.0;  // 20 ips offered, all entries sustain it
  sc.seed = 5;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_EQ(m.dropped, 0);
  EXPECT_GT(m.offered, 0);
  EXPECT_DOUBLE_EQ(m.inference_loss_pct, 0.0);
  EXPECT_NEAR(m.accuracy, 0.88, 0.05);
  EXPECT_GT(m.qoe, 0.8);
}

TEST(EdgeSim, StaticFinnDropsUnderOverload) {
  const Library lib = controlled_library();
  EdgeScenario sc;
  sc.cameras = 20;
  sc.ips_per_camera = 7.5;  // 150 offered vs 100 ips FINN capacity
  sc.seed = 6;
  auto finn = simulate_edge(lib, {AdaptPolicy::kStaticFinn, 0.10}, sc);
  auto adapex = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_GT(finn.inference_loss_pct, 10.0);
  EXPECT_LT(adapex.inference_loss_pct, finn.inference_loss_pct);
  EXPECT_GT(adapex.qoe, finn.qoe);
  EXPECT_GT(adapex.served, finn.served);
}

TEST(EdgeSim, MetricsAreConsistent) {
  const Library lib = controlled_library();
  EdgeScenario sc;
  sc.cameras = 20;
  sc.ips_per_camera = 7.5;
  sc.seed = 7;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_EQ(m.offered, m.served + m.dropped);
  EXPECT_GT(m.energy_j, 0.0);
  EXPECT_NEAR(m.avg_power_w, m.energy_j / sc.duration_s, 1e-9);
  EXPECT_NEAR(m.qoe, m.accuracy * (static_cast<double>(m.served) / m.offered),
              1e-9);
  EXPECT_GE(m.avg_power_w, lib.static_power_w - 1e-9);
  // Traces were recorded at the sampling cadence.
  EXPECT_NEAR(static_cast<double>(m.trace.size()),
              sc.duration_s / sc.sample_period_s, 2.0);
}

TEST(EdgeSim, AveragingRunsIsDeterministic) {
  const Library lib = controlled_library();
  EdgeScenario sc;
  sc.cameras = 20;
  sc.ips_per_camera = 7.5;
  sc.seed = 11;
  auto a = simulate_edge_runs(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc, 5);
  auto b = simulate_edge_runs(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc, 5);
  EXPECT_DOUBLE_EQ(a.qoe, b.qoe);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.served, b.served);
}

TEST(EdgeSim, ScaleToLibraryTargetsFinnCapacity) {
  const Library lib = controlled_library();
  EdgeScenario sc;
  sc.cameras = 20;
  EdgeScenario scaled = scale_to_library(sc, lib, 1.3);
  EXPECT_NEAR(scaled.offered_ips(), 130.0, 1e-9);  // 1.3 x 100 ips
}

TEST(EdgeSim, FlashCrowdForcesAdaptation) {
  const Library lib = controlled_library();
  EdgeScenario sc;
  sc.cameras = 20;
  sc.ips_per_camera = 5.0;  // 100 ips base: at FINN capacity
  sc.pattern = WorkloadPattern::kFlashCrowd;
  sc.spike_start_s = 10.0;
  sc.spike_duration_s = 5.0;
  sc.spike_multiplier = 3.0;  // 300 ips spike: needs the pruned accelerator
  sc.seed = 17;
  auto adapex = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  auto finn = simulate_edge(lib, {AdaptPolicy::kStaticFinn, 0.10}, sc);
  EXPECT_LT(adapex.inference_loss_pct, finn.inference_loss_pct);
  // The trace shows the pruning-rate switch during the spike window.
  bool switched_during_spike = false;
  for (const auto& tp : adapex.trace) {
    if (tp.time_s >= sc.spike_start_s &&
        tp.time_s <= sc.spike_start_s + sc.spike_duration_s + 1.0 &&
        tp.prune_rate_pct > 0) {
      switched_during_spike = true;
    }
  }
  EXPECT_TRUE(switched_during_spike);
}

TEST(EdgeSim, ReconfigurationCostsServiceTime) {
  const Library lib = controlled_library();
  // Workload oscillates around the accel-2/accel-3 boundary to force
  // repeated reconfigurations.
  EdgeScenario sc;
  sc.cameras = 20;
  sc.ips_per_camera = 12.0;  // 240 ips: needs accel 3; deviation dips below
  sc.deviation = 0.6;
  sc.seed = 13;
  auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
  EXPECT_GT(m.reconfigurations, 0);
}

}  // namespace
}  // namespace adapex
