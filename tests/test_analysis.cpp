// Tests for the analysis tooling: FIFO sizing, pruning sensitivity,
// classification metrics / confidence calibration, and workload models.

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "edge/workload.hpp"
#include "finn/fifo_sizing.hpp"
#include "model/cnv.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "pruning/sensitivity.hpp"

namespace adapex {
namespace {

Accelerator tiny_accelerator(bool with_exits) {
  Rng rng(31);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  static BranchyModel model;  // keep alive; compile borrows layer pointers
  model = with_exits
              ? build_cnv_with_exits(cfg, paper_exits_config(false), rng)
              : build_cnv(cfg, rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  return compile_accelerator(model, styled_folding(sites), AcceleratorConfig{});
}

TEST(FifoSizing, EveryLinkGetsADepth) {
  Accelerator acc = tiny_accelerator(true);
  std::vector<int> exits(64);
  for (std::size_t i = 0; i < exits.size(); ++i) exits[i] = static_cast<int>(i % 3);
  auto reqs = size_fifos(acc, exits);
  // One link per module with a predecessor.
  std::size_t links = 0;
  for (const auto& path : acc.paths) links += path.size() - 1;
  // Paths share the backbone prefix, so count distinct consumers instead.
  EXPECT_GE(reqs.size(), acc.modules.size() - acc.paths.size());
  for (const auto& r : reqs) {
    EXPECT_GE(r.depth_images, 1);
    EXPECT_GT(r.depth_elements, 0);
    EXPECT_GE(r.bram, 0);
    EXPECT_FALSE(r.describe(acc).empty());
  }
}

TEST(FifoSizing, SafetyMarginScalesDepth) {
  Accelerator acc = tiny_accelerator(false);
  std::vector<int> exits(32, 0);
  auto base = size_fifos(acc, exits, 1.0);
  auto padded = size_fifos(acc, exits, 2.0);
  ASSERT_EQ(base.size(), padded.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_GE(padded[i].depth_images, base[i].depth_images);
  }
  EXPECT_GE(total_fifo_bram(padded), total_fifo_bram(base));
}

TEST(FifoSizing, RejectsBadArguments) {
  Accelerator acc = tiny_accelerator(false);
  EXPECT_THROW(size_fifos(acc, {}), Error);
  EXPECT_THROW(size_fifos(acc, {0}, 0.5), Error);
}

TEST(Sensitivity, ProbesEveryConvLayer) {
  Rng rng(32);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  SyntheticSpec spec = cifar10_like_spec();
  spec.train_size = 60;
  spec.test_size = 40;
  SyntheticDataset data = make_synthetic(spec);
  TrainConfig tc;
  tc.epochs = 1;
  train_model(model, data.train, true, tc);

  auto sites = walk_compute_layers(model, 3, 32);
  SensitivityOptions opts;
  opts.rates_pct = {25, 75};
  opts.folding = styled_folding(sites);
  auto points = prune_sensitivity(model, data.test, opts);

  int conv_sites = 0;
  for (const auto& s : sites) conv_sites += s.is_conv ? 1 : 0;
  EXPECT_EQ(points.size(), static_cast<std::size_t>(conv_sites) * 2);
  for (const auto& p : points) {
    EXPECT_GE(p.accuracy, 0.0);
    EXPECT_LE(p.accuracy, 1.0);
    EXPECT_GE(p.removed, 0);
  }
  // The probed model is untouched: original still runs at full width.
  auto post_sites = walk_compute_layers(model, 3, 32);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(post_sites[i].out_channels, sites[i].out_channels);
  }
}

TEST(Metrics, ConfusionMatrixConsistency) {
  Rng rng(33);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  BranchyModel model = build_cnv(cfg, rng);
  SyntheticSpec spec = cifar10_like_spec();
  spec.train_size = 60;
  spec.test_size = 50;
  SyntheticDataset data = make_synthetic(spec);
  TrainConfig tc;
  tc.epochs = 2;
  train_model(model, data.train, true, tc);

  ConfusionMatrix cm = confusion_matrix(model, data.test, 0);
  long total = 0;
  for (long c : cm.counts) total += c;
  EXPECT_EQ(total, data.test.size());
  // accuracy() agrees with apply_threshold on the final exit.
  auto eval = evaluate_exits(model, data.test);
  auto stats = apply_threshold(eval, 2.0);
  EXPECT_NEAR(cm.accuracy(), stats.accuracy, 1e-9);
  auto recall = cm.per_class_recall();
  EXPECT_EQ(recall.size(), 10u);
  for (double r : recall) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(Metrics, CalibrationReportStructure) {
  // Synthetic records: perfectly calibrated at confidence 0.75.
  ExitEvaluation eval;
  Rng rng(34);
  for (int i = 0; i < 400; ++i) {
    const bool correct = rng.bernoulli(0.75);
    eval.confidence.push_back({0.75f, 1.0f});
    eval.correct.push_back({static_cast<std::uint8_t>(correct ? 1 : 0), 1});
  }
  auto report = calibration_report(eval, 0, 10);
  EXPECT_EQ(report.bins.size(), 10u);
  // All mass in bin [0.7, 0.8).
  EXPECT_EQ(report.bins[7].count, 400);
  EXPECT_NEAR(report.bins[7].mean_confidence, 0.75, 1e-6);
  EXPECT_NEAR(report.bins[7].accuracy, 0.75, 0.05);
  EXPECT_LT(report.ece, 0.05);  // well calibrated
  EXPECT_THROW(calibration_report(eval, 5, 10), Error);
  EXPECT_THROW(calibration_report(eval, 0, 1), Error);
}

TEST(Metrics, MiscalibratedModelHasHighEce) {
  ExitEvaluation eval;
  for (int i = 0; i < 200; ++i) {
    // Confident but wrong half the time.
    eval.confidence.push_back({0.95f});
    eval.correct.push_back({static_cast<std::uint8_t>(i % 2)});
  }
  auto report = calibration_report(eval, 0);
  EXPECT_GT(report.ece, 0.4);
}

TEST(Workload, PatternsProduceExpectedRates) {
  WorkloadSpec spec;
  spec.base_ips = 100;
  spec.duration_s = 20;
  spec.period_s = 5;
  spec.deviation = 0.3;

  spec.pattern = WorkloadPattern::kRandomDeviation;
  WorkloadModel random_model(spec, 1);
  for (int i = 0; i < 4; ++i) {
    const double r = random_model.period_rate(i);
    EXPECT_GE(r, 70.0 - 1e-9);
    EXPECT_LE(r, 130.0 + 1e-9);
  }

  spec.pattern = WorkloadPattern::kFlashCrowd;
  spec.spike_start_s = 10;
  spec.spike_duration_s = 5;
  spec.spike_multiplier = 3.0;
  WorkloadModel crowd(spec, 1);
  EXPECT_DOUBLE_EQ(crowd.period_rate(0), 100.0);
  EXPECT_DOUBLE_EQ(crowd.period_rate(2), 300.0);  // [10, 15)
  EXPECT_DOUBLE_EQ(crowd.period_rate(3), 100.0);

  spec.pattern = WorkloadPattern::kTrace;
  spec.trace = {1.0, 2.0};
  WorkloadModel trace(spec, 1);
  EXPECT_DOUBLE_EQ(trace.period_rate(0), 100.0);
  EXPECT_DOUBLE_EQ(trace.period_rate(1), 200.0);
  EXPECT_DOUBLE_EQ(trace.period_rate(2), 100.0);  // wraps
}

TEST(Workload, ArrivalCountTracksRate) {
  WorkloadSpec spec;
  spec.base_ips = 200;
  spec.duration_s = 30;
  spec.period_s = 5;
  spec.deviation = 0.0;
  spec.pattern = WorkloadPattern::kRandomDeviation;
  WorkloadModel model(spec, 7);
  auto arrivals = model.generate_arrivals();
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 6000.0, 300.0);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    ASSERT_LE(arrivals[i - 1], arrivals[i]);  // sorted
  }
  EXPECT_LT(arrivals.back(), spec.duration_s);
}

TEST(Workload, TracePatternRequiresTrace) {
  WorkloadSpec spec;
  spec.pattern = WorkloadPattern::kTrace;
  EXPECT_THROW(WorkloadModel(spec, 1), Error);
}

}  // namespace
}  // namespace adapex
