// Tests for the synthetic datasets: determinism, shape, difficulty
// semantics, augmentation, and the properties the early-exit mechanism
// depends on (easy samples are genuinely lower-noise).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/dataset.hpp"

namespace adapex {
namespace {

SyntheticSpec small_spec() {
  SyntheticSpec spec = cifar10_like_spec();
  spec.train_size = 100;
  spec.test_size = 50;
  return spec;
}

TEST(Data, ShapesAndSizes) {
  SyntheticDataset d = make_synthetic(small_spec());
  EXPECT_EQ(d.train.size(), 100);
  EXPECT_EQ(d.test.size(), 50);
  EXPECT_EQ(d.train.channels(), 3);
  EXPECT_EQ(d.train.height(), 32);
  EXPECT_EQ(d.train.width(), 32);
  EXPECT_EQ(d.train.image(0).shape(), (std::vector<int>{3, 32, 32}));
}

TEST(Data, DeterministicInSeed) {
  SyntheticDataset a = make_synthetic(small_spec());
  SyntheticDataset b = make_synthetic(small_spec());
  for (int i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.label(i), b.train.label(i));
    for (std::size_t j = 0; j < a.train.image(i).numel(); ++j) {
      ASSERT_FLOAT_EQ(a.train.image(i)[j], b.train.image(i)[j]);
    }
  }
  SyntheticSpec other = small_spec();
  other.seed += 1;
  SyntheticDataset c = make_synthetic(other);
  int diff = 0;
  for (int i = 0; i < a.train.size(); ++i) {
    if (a.train.label(i) != c.train.label(i)) ++diff;
  }
  EXPECT_GT(diff, 10);
}

TEST(Data, LabelsInRangeAndAllClassesPresent) {
  SyntheticSpec spec = small_spec();
  spec.train_size = 500;
  SyntheticDataset d = make_synthetic(spec);
  std::vector<int> counts(static_cast<std::size_t>(spec.num_classes), 0);
  for (int i = 0; i < d.train.size(); ++i) {
    ASSERT_GE(d.train.label(i), 0);
    ASSERT_LT(d.train.label(i), spec.num_classes);
    counts[static_cast<std::size_t>(d.train.label(i))]++;
  }
  for (int c = 0; c < spec.num_classes; ++c) {
    EXPECT_GT(counts[static_cast<std::size_t>(c)], 0) << "class " << c;
  }
}

TEST(Data, DifficultyCorrelatesWithNoise) {
  // Easy and hard samples of the same class should differ in deviation
  // from each other: estimate per-sample noise as the variance of
  // differences from the class mean image.
  SyntheticSpec spec = small_spec();
  spec.train_size = 400;
  SyntheticDataset d = make_synthetic(spec);
  double easy_energy = 0.0, hard_energy = 0.0;
  int easy_n = 0, hard_n = 0;
  for (int i = 0; i < d.train.size(); ++i) {
    // High-frequency energy as a noise proxy: mean squared difference of
    // horizontally adjacent pixels.
    const Tensor& img = d.train.image(i);
    double hf = 0.0;
    std::size_t cnt = 0;
    for (int c = 0; c < 3; ++c) {
      for (int y = 0; y < 32; ++y) {
        for (int x = 0; x + 1 < 32; ++x) {
          const float a = img[(static_cast<std::size_t>(c) * 32 + y) * 32 + x];
          const float b = img[(static_cast<std::size_t>(c) * 32 + y) * 32 + x + 1];
          hf += static_cast<double>(a - b) * (a - b);
          ++cnt;
        }
      }
    }
    hf /= static_cast<double>(cnt);
    if (d.train.difficulty(i) < 0.2) {
      easy_energy += hf;
      ++easy_n;
    } else if (d.train.difficulty(i) > 0.7) {
      hard_energy += hf;
      ++hard_n;
    }
  }
  ASSERT_GT(easy_n, 0);
  ASSERT_GT(hard_n, 0);
  EXPECT_LT(easy_energy / easy_n, hard_energy / hard_n);
}

TEST(Data, GtsrbSpecShape) {
  SyntheticSpec spec = gtsrb_like_spec();
  EXPECT_EQ(spec.num_classes, 43);
  EXPECT_FALSE(spec.flip_symmetry);
  spec.train_size = 86;
  spec.test_size = 43;
  SyntheticDataset d = make_synthetic(spec);
  EXPECT_EQ(d.train.num_classes(), 43);
}

TEST(Data, BatchAssembly) {
  SyntheticDataset d = make_synthetic(small_spec());
  Tensor batch = d.train.batch_images({3, 7, 11});
  EXPECT_EQ(batch.shape(), (std::vector<int>{3, 3, 32, 32}));
  auto labels = d.train.batch_labels({3, 7, 11});
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], d.train.label(3));
  // First image copied verbatim.
  for (std::size_t j = 0; j < d.train.image(3).numel(); ++j) {
    ASSERT_FLOAT_EQ(batch[j], d.train.image(3)[j]);
  }
}

TEST(Data, AddRejectsBadShapeAndLabel) {
  Dataset ds(10, 3, 32, 32);
  Tensor wrong({3, 16, 16});
  EXPECT_THROW(ds.add(std::move(wrong), 0, 0.0f), Error);
  Tensor ok({3, 32, 32});
  EXPECT_THROW(ds.add(std::move(ok), 10, 0.0f), Error);
}

TEST(Data, AugmentPreservesShapeAndIsBounded) {
  SyntheticDataset d = make_synthetic(small_spec());
  Rng rng(3);
  const Tensor& img = d.train.image(0);
  float maxabs = 0.0f;
  for (std::size_t j = 0; j < img.numel(); ++j) {
    maxabs = std::max(maxabs, std::abs(img[j]));
  }
  for (int i = 0; i < 20; ++i) {
    Tensor aug = augment_image(img, true, rng);
    EXPECT_EQ(aug.shape(), img.shape());
    for (std::size_t j = 0; j < aug.numel(); ++j) {
      ASSERT_LE(std::abs(aug[j]), maxabs + 1e-5f);  // shift/flip only
    }
  }
}

TEST(Data, AugmentFlipDisabledForSigns) {
  // With flips disabled and zero shift possible, some augmentations equal
  // the original; with flips enabled on an asymmetric image, roughly half
  // should be mirrored. Verify the flag is honored by checking that
  // disabled-flip augmentations never produce the mirror image.
  Tensor img({1, 4, 4});
  for (std::size_t i = 0; i < img.numel(); ++i) img[i] = static_cast<float>(i);
  Tensor mirror({1, 4, 4});
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      mirror[static_cast<std::size_t>(y) * 4 + x] = img[static_cast<std::size_t>(y) * 4 + (3 - x)];
    }
  }
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Tensor aug = augment_image(img, false, rng);
    bool is_mirror = true;
    for (std::size_t j = 0; j < aug.numel(); ++j) {
      if (std::abs(aug[j] - mirror[j]) > 1e-6f) {
        is_mirror = false;
        break;
      }
    }
    EXPECT_FALSE(is_mirror);
  }
}

}  // namespace
}  // namespace adapex
