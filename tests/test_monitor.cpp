// Tests for the workload monitor (rate estimation + change flagging).

#include <gtest/gtest.h>

#include "runtime/monitor.hpp"

namespace adapex {
namespace {

TEST(Monitor, RateEstimation) {
  WorkloadMonitor monitor;
  for (int i = 0; i < 150; ++i) monitor.on_arrival();
  auto s = monitor.sample(0.5);
  EXPECT_DOUBLE_EQ(s.rate_ips, 300.0);
  EXPECT_TRUE(s.flagged);  // first sample always flags
}

TEST(Monitor, FlagOnlyOnSignificantChange) {
  WorkloadMonitor monitor(WorkloadMonitor::Options{1.0, 0.15});
  auto feed = [&](int arrivals) {
    for (int i = 0; i < arrivals; ++i) monitor.on_arrival();
    return monitor.sample(1.0);
  };
  EXPECT_TRUE(feed(100).flagged);   // baseline
  EXPECT_FALSE(feed(108).flagged);  // +8%: below threshold
  EXPECT_FALSE(feed(93).flagged);   // -7% vs flagged 100
  EXPECT_TRUE(feed(130).flagged);   // +30%
  EXPECT_DOUBLE_EQ(monitor.last_flagged_rate(), 130.0);
  EXPECT_FALSE(feed(120).flagged);  // -8% vs 130
  EXPECT_TRUE(feed(90).flagged);    // -31% vs 130
}

TEST(Monitor, SmoothingDampsSpikes) {
  WorkloadMonitor monitor(WorkloadMonitor::Options{0.5, 0.15});
  for (int i = 0; i < 100; ++i) monitor.on_arrival();
  auto s1 = monitor.sample(1.0);
  EXPECT_DOUBLE_EQ(s1.rate_ips, 100.0);  // first sample seeds the EMA
  for (int i = 0; i < 200; ++i) monitor.on_arrival();
  auto s2 = monitor.sample(1.0);
  EXPECT_DOUBLE_EQ(s2.rate_ips, 150.0);  // halfway to 200
}

TEST(Monitor, ZeroTrafficWindows) {
  WorkloadMonitor monitor;
  auto s1 = monitor.sample(1.0);
  EXPECT_DOUBLE_EQ(s1.rate_ips, 0.0);
  EXPECT_TRUE(s1.flagged);
  auto s2 = monitor.sample(1.0);
  EXPECT_FALSE(s2.flagged);  // still zero: no change
  for (int i = 0; i < 10; ++i) monitor.on_arrival();
  EXPECT_TRUE(monitor.sample(1.0).flagged);  // traffic appeared
}

TEST(Monitor, ValidatesOptions) {
  EXPECT_THROW(WorkloadMonitor(WorkloadMonitor::Options{0.0, 0.1}), Error);
  EXPECT_THROW(WorkloadMonitor(WorkloadMonitor::Options{1.5, 0.1}), Error);
  EXPECT_THROW(WorkloadMonitor(WorkloadMonitor::Options{1.0, -0.1}), Error);
  WorkloadMonitor ok;
  EXPECT_THROW(ok.sample(0.0), Error);
}

}  // namespace
}  // namespace adapex
