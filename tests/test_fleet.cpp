// Tests for the fleet-scale serving simulator: device-seed uniqueness and
// stream independence, the size-1 byte-identity guarantee against
// simulate_edge, correlated-failure determinism (including under different
// ADAPEX_THREADS settings), the capacity-safe stagger invariant, circuit
// breaker transitions, and the FS lint rules.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "edge/fleet.hpp"
#include "edge/simulation.hpp"

namespace adapex {
namespace {

LibraryEntry entry(int accel, ModelVariant v, int rate, int ct, double acc,
                   double ips, double lat_ms, double power_w, double e_j) {
  LibraryEntry e;
  e.accel_id = accel;
  e.variant = v;
  e.prune_rate_pct = rate;
  e.conf_threshold_pct = ct;
  e.accuracy = acc;
  e.exit_fractions = v == ModelVariant::kNoExit
                         ? std::vector<double>{1.0}
                         : std::vector<double>{0.5, 0.5};
  e.ips = ips;
  e.latency_ms = lat_ms;
  e.peak_power_w = power_w;
  e.energy_per_inf_j = e_j;
  return e;
}

/// Same controlled library as test_runtime_faults.cpp.
Library controlled_library() {
  Library lib;
  lib.dataset = "controlled";
  lib.reference_accuracy = 0.90;
  lib.static_power_w = 0.7;
  for (int id = 0; id < 4; ++id) {
    AcceleratorRecord a;
    a.id = id;
    a.variant = id < 2 ? ModelVariant::kNoExit : ModelVariant::kNotPrunedExits;
    a.prune_rate_pct = (id % 2) * 50;
    a.reconfig_ms = 145.0;
    lib.accelerators.push_back(a);
  }
  lib.entries = {
      entry(0, ModelVariant::kNoExit, 0, -1, 0.90, 100, 6.0, 1.16, 0.006),
      entry(1, ModelVariant::kNoExit, 50, -1, 0.70, 300, 2.0, 1.00, 0.002),
      entry(2, ModelVariant::kNotPrunedExits, 0, 50, 0.88, 120, 5.0, 1.35,
            0.005),
      entry(2, ModelVariant::kNotPrunedExits, 0, 5, 0.84, 200, 3.0, 1.30,
            0.004),
      entry(3, ModelVariant::kNotPrunedExits, 50, 50, 0.82, 350, 1.8, 1.20,
            0.002),
      entry(3, ModelVariant::kNotPrunedExits, 50, 5, 0.78, 500, 1.2, 1.18,
            0.0015),
  };
  return lib;
}

FaultSpec mixed_faults() {
  FaultSpec f;
  f.reconfig_fail_prob = 0.30;
  f.reconfig_slow_prob = 0.20;
  f.reconfig_slow_factor = 3.0;
  f.stall_prob = 0.05;
  f.stall_duration_s = 0.8;
  f.monitor_drop_prob = 0.10;
  f.monitor_delay_prob = 0.10;
  f.seu_weight_prob = 0.04;
  f.seu_config_prob = 0.03;
  return f;
}

/// Overloaded oscillating single-device scenario (as in the fault tests).
EdgeScenario oscillating_scenario(std::uint64_t seed) {
  EdgeScenario sc;
  sc.cameras = 20;
  sc.ips_per_camera = 12.0;
  sc.deviation = 0.6;
  sc.seed = seed;
  return sc;
}

/// A 4-device mixed-tenant fleet under the controlled library: total
/// offered load around the fleet's warm capacity so reconfigurations and
/// routing both matter.
FleetScenario small_fleet(std::uint64_t seed) {
  FleetScenario f;
  f.base = EdgeScenario{};
  f.base.seed = seed;
  f.base.duration_s = 25.0;
  for (int i = 0; i < 4; ++i) {
    FleetDeviceSpec d;
    d.name = "dev" + std::to_string(i);
    f.devices.push_back(std::move(d));
  }
  TenantSpec interactive;
  interactive.name = "interactive";
  interactive.workload.base_ips = 500.0;
  interactive.workload.deviation = 0.4;
  interactive.slo_latency_ms = 250.0;
  interactive.priority = 1;
  TenantSpec batch;
  batch.name = "batch";
  batch.workload.base_ips = 400.0;
  batch.workload.pattern = WorkloadPattern::kDiurnal;
  batch.priority = 0;
  f.tenants = {interactive, batch};
  return f;
}

bool traces_equal(const std::vector<TracePoint>& a,
                  const std::vector<TracePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time_s != b[i].time_s || a[i].measured_ips != b[i].measured_ips ||
        a[i].prune_rate_pct != b[i].prune_rate_pct ||
        a[i].conf_threshold_pct != b[i].conf_threshold_pct ||
        a[i].entry_accuracy != b[i].entry_accuracy ||
        a[i].reconfigured != b[i].reconfigured ||
        a[i].health != b[i].health ||
        a[i].reconfig_failed != b[i].reconfig_failed ||
        a[i].degraded != b[i].degraded ||
        a[i].watchdog_fired != b[i].watchdog_fired ||
        a[i].seu_upset != b[i].seu_upset ||
        a[i].drift_detected != b[i].drift_detected ||
        a[i].scrubbed != b[i].scrubbed || a[i].reloaded != b[i].reloaded) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Seeds
// ---------------------------------------------------------------------------

TEST(FleetSeeds, LoneDeviceInheritsFleetSeed) {
  EXPECT_EQ(fleet_device_seed(1234, 0, 1), 1234u);
  EXPECT_EQ(tenant_stream_seed(1234, 0, 1), 1234u);
}

TEST(FleetSeeds, UniqueAcrossDevicesTenantsAndFaultStreams) {
  const std::uint64_t fleet_seed = 42;
  std::set<std::uint64_t> seen;
  seen.insert(fleet_seed);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(seen.insert(fleet_device_seed(fleet_seed, i, 64)).second)
        << "device seed " << i << " collided";
  }
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_TRUE(seen.insert(tenant_stream_seed(fleet_seed, k, 16)).second)
        << "tenant seed " << k << " collided";
  }
}

TEST(FleetSeeds, TenantStreamIndependentOfOtherTenants) {
  WorkloadSpec a;
  a.base_ips = 200.0;
  WorkloadSpec b = a;
  b.base_ips = 700.0;
  WorkloadSpec b2 = a;
  b2.base_ips = 50.0;
  const auto merged1 = generate_fleet_arrivals({a, b}, 7);
  const auto merged2 = generate_fleet_arrivals({a, b2}, 7);
  std::vector<double> a1, a2;
  for (const FleetRequest& r : merged1) {
    if (r.tenant == 0) a1.push_back(r.time_s);
  }
  for (const FleetRequest& r : merged2) {
    if (r.tenant == 0) a2.push_back(r.time_s);
  }
  EXPECT_EQ(a1, a2) << "changing tenant 1's rate perturbed tenant 0's stream";
}

// ---------------------------------------------------------------------------
// Size-1 identity
// ---------------------------------------------------------------------------

TEST(FleetIdentity, Size1FaultFreeReproducesSimulateEdge) {
  const Library lib = controlled_library();
  const RuntimePolicy pol;
  const EdgeScenario sc = oscillating_scenario(5);
  const EdgeMetrics em = simulate_edge(lib, pol, sc);
  const FleetMetrics fm = simulate_fleet(lib, pol, fleet_from_edge(sc));
  ASSERT_EQ(fm.devices.size(), 1u);
  EXPECT_EQ(em.csv_row(), fm.devices[0].csv_row());
  EXPECT_TRUE(traces_equal(em.trace, fm.devices[0].trace));
  EXPECT_EQ(fm.offered, em.offered);
  EXPECT_EQ(fm.served, em.served);
  EXPECT_EQ(fm.dropped, em.dropped);
  EXPECT_EQ(fm.shed, 0);
}

TEST(FleetIdentity, Size1FaultedReproducesSimulateEdgeByteForByte) {
  const Library lib = controlled_library();
  const RuntimePolicy pol;
  EdgeScenario sc = oscillating_scenario(11);
  sc.faults = mixed_faults();
  sc.faults.mitigation.scrubbing = true;
  const EdgeMetrics em = simulate_edge(lib, pol, sc);
  const FleetMetrics fm = simulate_fleet(lib, pol, fleet_from_edge(sc));
  ASSERT_EQ(fm.devices.size(), 1u);
  EXPECT_EQ(em.csv_row(), fm.devices[0].csv_row());
  EXPECT_TRUE(traces_equal(em.trace, fm.devices[0].trace));
}

// ---------------------------------------------------------------------------
// Determinism & stream independence
// ---------------------------------------------------------------------------

FleetScenario correlated_fleet(std::uint64_t seed, double transient_mult,
                               double seu_mult, double spike_prob) {
  FleetScenario f = small_fleet(seed);
  f.base.faults = mixed_faults();
  FailureDomain rack;
  rack.name = "rack0";
  rack.spike_prob = spike_prob;
  rack.spike_duration_s = 3.0;
  rack.transient_mult = transient_mult;
  rack.seu_mult = seu_mult;
  f.fleet_faults.domains.push_back(rack);
  f.devices[0].domain = 0;
  f.devices[1].domain = 0;
  f.breaker.open_after_failures = 3;
  f.stagger.enabled = true;
  return f;
}

TEST(FleetDeterminism, ByteIdenticalAcrossRunsAndThreadsEnv) {
  const Library lib = controlled_library();
  const RuntimePolicy pol;
  const FleetScenario sc = correlated_fleet(9, 8.0, 6.0, 0.25);

  setenv("ADAPEX_THREADS", "1", 1);
  const FleetMetrics a = simulate_fleet(lib, pol, sc);
  setenv("ADAPEX_THREADS", "8", 1);
  const FleetMetrics b = simulate_fleet(lib, pol, sc);
  unsetenv("ADAPEX_THREADS");
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_GT(a.domain_spikes, 0);
}

TEST(FleetDeterminism, UnityScaleSpikesLeaveDeviceStreamsUntouched) {
  const Library lib = controlled_library();
  const RuntimePolicy pol;
  // Domains spike constantly but multiply rates by exactly 1.0: every
  // device episode must be byte-identical to the domain-free fleet,
  // because domain draws come from their own stream and set_rate_scale at
  // 1.0 is floating-point exact.
  FleetScenario with = correlated_fleet(13, 1.0, 1.0, 1.0);
  FleetScenario without = with;
  without.fleet_faults.domains.clear();
  without.devices[0].domain = -1;
  without.devices[1].domain = -1;
  const FleetMetrics a = simulate_fleet(lib, pol, with);
  const FleetMetrics c = simulate_fleet(lib, pol, without);
  EXPECT_GT(a.domain_spikes, 0);
  ASSERT_EQ(a.devices.size(), c.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].csv_row(), c.devices[i].csv_row())
        << "device " << i;
  }
}

TEST(FleetDeterminism, CorrelatedSpikesChangeOutcomesDeterministically) {
  const Library lib = controlled_library();
  const RuntimePolicy pol;
  const FleetScenario hot = correlated_fleet(21, 10.0, 8.0, 0.5);
  const FleetScenario calm = correlated_fleet(21, 1.0, 1.0, 0.5);
  const FleetMetrics h1 = simulate_fleet(lib, pol, hot);
  const FleetMetrics h2 = simulate_fleet(lib, pol, hot);
  const FleetMetrics c = simulate_fleet(lib, pol, calm);
  EXPECT_EQ(h1.to_json().dump(), h2.to_json().dump());
  long hot_failures = 0, calm_failures = 0;
  for (const EdgeMetrics& d : h1.devices) hot_failures += d.reconfig_failures;
  for (const EdgeMetrics& d : c.devices) calm_failures += d.reconfig_failures;
  EXPECT_GT(hot_failures, calm_failures)
      << "a 10x transient spike should surface extra reconfig failures";
}

// ---------------------------------------------------------------------------
// Capacity-safe staggering
// ---------------------------------------------------------------------------

TEST(FleetStagger, InvariantHoldsStaggeredAndBreaksUnstaggered) {
  const Library lib = controlled_library();
  const RuntimePolicy pol;
  for (std::uint64_t seed : {3u, 17u, 29u}) {
    FleetScenario sc = small_fleet(seed);
    sc.base.faults.stall_prob = 0.05;
    sc.base.faults.stall_duration_s = 0.8;
    sc.stagger.enabled = true;
    sc.stagger.min_capacity_fraction = 0.70;
    sc.stagger.max_defer_s = 1e9;  // no starvation override: pure invariant
    const FleetMetrics staggered = simulate_fleet(lib, pol, sc);
    sc.stagger.enabled = false;
    const FleetMetrics loose = simulate_fleet(lib, pol, sc);

    EXPECT_EQ(staggered.capacity_violations, 0)
        << "seed " << seed << ": the gate admitted below the floor";
    EXPECT_EQ(staggered.forced_reconfigs, 0) << "seed " << seed;
    EXPECT_GT(loose.capacity_violations, 0)
        << "seed " << seed
        << ": unstaggered never violated — scenario too easy to "
           "discriminate";
    EXPECT_GT(staggered.stagger_deferrals, 0) << "seed " << seed;
    // The fleet must still make progress while staggered.
    EXPECT_GT(staggered.served, 0) << "seed " << seed;
  }
}

TEST(FleetStagger, StarvationOverrideForcesAdmission) {
  const Library lib = controlled_library();
  const RuntimePolicy pol;
  FleetScenario sc = small_fleet(31);
  sc.stagger.enabled = true;
  // An impossible floor: nothing short of the override ever admits.
  sc.stagger.min_capacity_fraction = 1.0;
  sc.stagger.max_defer_s = 2.0;
  const FleetMetrics fm = simulate_fleet(lib, pol, sc);
  EXPECT_GT(fm.forced_reconfigs, 0)
      << "deferred proposals must eventually force through";
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

TEST(FleetBreaker, TransitionsClosedOpenHalfOpen) {
  CircuitBreakerPolicy p;
  p.open_after_failures = 2;
  p.open_duration_s = 5.0;
  p.half_open_probes = 2;
  CircuitBreaker cb(p);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.admit(0.0));

  cb.observe(true, 1.0);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  cb.observe(true, 2.0);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.opens(), 1);
  EXPECT_FALSE(cb.would_admit(3.0));
  EXPECT_FALSE(cb.admit(3.0));

  // Hold time elapses: the next admission probes HalfOpen.
  EXPECT_TRUE(cb.would_admit(7.5));
  EXPECT_TRUE(cb.admit(7.5));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(cb.admit(7.6));   // second (last) probe
  EXPECT_FALSE(cb.admit(7.7));  // probe budget exhausted

  // A failing observation mid-probe reopens; a clean one closes.
  cb.observe(true, 8.0);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.opens(), 2);
  EXPECT_TRUE(cb.admit(13.5));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
  cb.observe(false, 14.0);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
}

TEST(FleetBreaker, DisabledPolicyNeverOpens) {
  CircuitBreakerPolicy p;
  p.open_after_failures = 0;
  CircuitBreaker cb(p);
  for (int i = 0; i < 10; ++i) cb.observe(true, i);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.admit(100.0));
  EXPECT_EQ(cb.opens(), 0);
}

// ---------------------------------------------------------------------------
// Request conservation & batching
// ---------------------------------------------------------------------------

TEST(FleetAccounting, RequestsConservedWithBatchingAndAdmission) {
  const Library lib = controlled_library();
  const RuntimePolicy pol;
  FleetScenario sc = small_fleet(41);
  sc.batching.enabled = true;
  sc.batching.max_batch = 8;
  sc.batching.max_wait_ms = 10.0;
  sc.batching.setup_ms = 0.5;
  sc.admission.enabled = true;
  sc.admission.high_watermark = 0.5;
  sc.admission.low_watermark = 0.2;
  const FleetMetrics fm = simulate_fleet(lib, pol, sc);
  EXPECT_EQ(fm.offered, fm.served + fm.dropped + fm.shed);
  long t_off = 0, t_srv = 0, t_drop = 0, t_shed = 0;
  for (const TenantMetrics& t : fm.tenants) {
    EXPECT_EQ(t.offered, t.served + t.dropped + t.shed) << t.name;
    t_off += t.offered;
    t_srv += t.served;
    t_drop += t.dropped;
    t_shed += t.shed;
  }
  EXPECT_EQ(t_off, fm.offered);
  EXPECT_EQ(t_srv, fm.served);
  EXPECT_EQ(t_drop, fm.dropped);
  EXPECT_EQ(t_shed, fm.shed);
  // Low watermarks under an overloaded trace must actually shed the
  // low-priority tenant first.
  EXPECT_GT(fm.shed, 0);
  EXPECT_GE(fm.tenants[1].shed, fm.tenants[0].shed);
  EXPECT_GT(fm.served, 0);
  EXPECT_GT(fm.p99_latency_ms, 0.0);
  EXPECT_GE(fm.p999_latency_ms, fm.p99_latency_ms);
  EXPECT_GE(fm.p99_latency_ms, fm.p50_latency_ms);
}

// ---------------------------------------------------------------------------
// Lint & JSON
// ---------------------------------------------------------------------------

TEST(FleetLint, CleanScenarioPasses) {
  const analysis::LintReport r = lint_fleet_scenario(small_fleet(1));
  EXPECT_FALSE(r.has_errors()) << r.error_message();
}

TEST(FleetLint, AggregatesEveryViolation) {
  FleetScenario sc = small_fleet(1);
  sc.devices[0].speed_factor = 0.0;          // FS1
  sc.devices[1].domain = 5;                  // FS1
  sc.tenants[0].workload.period_s = -1.0;    // FS2
  sc.tenants[1].min_accuracy = 2.0;          // FS3
  FailureDomain dom;
  dom.spike_prob = 1.5;                      // FS4
  sc.fleet_faults.domains.push_back(dom);
  sc.stagger.min_capacity_fraction = 3.0;    // FS5
  sc.admission.low_watermark = 0.9;          // FS6 (low > high)
  sc.batching.max_batch = 0;                 // FS7
  sc.breaker.half_open_probes = 0;           // FS8
  sc.orchestrator_period_s = 0.0;            // FS8
  const analysis::LintReport r = lint_fleet_scenario(sc);
  EXPECT_TRUE(r.has_errors());
  const std::set<std::string> want = {"FS1", "FS2", "FS3", "FS4",
                                      "FS5", "FS6", "FS7", "FS8"};
  std::set<std::string> got;
  for (const auto& d : r.diagnostics) {
    if (d.severity == analysis::Severity::kError) got.insert(d.rule_id);
  }
  for (const std::string& rule : want) {
    EXPECT_TRUE(got.count(rule)) << "missing rule " << rule;
  }
  EXPECT_THROW(require_valid_fleet_scenario(sc), ConfigError);
}

TEST(FleetLint, SingleDeviceStaggerWarns) {
  FleetScenario sc = fleet_from_edge(EdgeScenario{});
  sc.stagger.enabled = true;
  const analysis::LintReport r = lint_fleet_scenario(sc);
  EXPECT_FALSE(r.has_errors());
  bool warned = false;
  for (const auto& d : r.diagnostics) {
    if (d.rule_id == "FS5" && d.severity == analysis::Severity::kWarning) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

TEST(FleetJson, ScenarioRoundTrips) {
  FleetScenario sc = correlated_fleet(77, 4.0, 2.0, 0.1);
  sc.batching.enabled = true;
  sc.admission.enabled = true;
  sc.eject_after_watchdog = 3;
  const FleetScenario back = FleetScenario::from_json(sc.to_json());
  EXPECT_EQ(sc.to_json().dump(), back.to_json().dump());
  EXPECT_EQ(back.devices.size(), sc.devices.size());
  EXPECT_EQ(back.tenants.size(), sc.tenants.size());
  EXPECT_EQ(back.base.seed, sc.base.seed);
  EXPECT_EQ(back.stagger.enabled, sc.stagger.enabled);
}

TEST(FleetJson, MetricsSerializeFinite) {
  const Library lib = controlled_library();
  const FleetMetrics fm =
      simulate_fleet(lib, RuntimePolicy{}, small_fleet(51));
  const Json j = fm.to_json();
  EXPECT_TRUE(j.contains("p999_latency_ms"));
  EXPECT_TRUE(j.contains("devices"));
  EXPECT_EQ(j.at("devices").as_array().size(), 4u);
  EXPECT_FALSE(FleetMetrics::csv_header().empty());
  EXPECT_EQ(fm.csv_row().find("nan"), std::string::npos);
}

}  // namespace
}  // namespace adapex
