// Differential tests for the blocked kernel layer (tensor/kernels.hpp):
// every blocked kernel must be byte-identical to the retained naive
// reference at awkward shapes, fused epilogues must equal their unfused
// compositions bit for bit, all ISA tiers must agree, and the end-to-end
// train -> eval pipeline must be byte-identical at any thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "model/cnv.hpp"
#include "nn/eval.hpp"
#include "nn/trainer.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace adapex {
namespace {

// Shapes chosen to exercise every tail path of the blocked kernels: smaller
// than one register tile, exact tile multiples, one-past multiples, primes,
// degenerate single rows/columns, and k larger than the cache block.
struct Shape {
  int m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {2, 3, 5},    {3, 5, 7},    {4, 8, 8},
    {4, 16, 32}, {5, 17, 33},  {7, 129, 65}, {8, 256, 64}, {9, 257, 129},
    {1, 300, 9}, {13, 31, 97}, {16, 64, 96}, {33, 10, 31},
};

std::vector<float> random_matrix(std::size_t len, std::uint64_t seed,
                                 bool inject_zeros) {
  Rng rng(seed);
  std::vector<float> out(len);
  for (auto& v : out) {
    // uniform01 in [0,1): shift to be sign-varied.
    v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    // ~25% exact zeros to exercise the zero-skip path (quantized weights).
    if (inject_zeros && rng.bernoulli(0.25)) v = 0.0f;
  }
  return out;
}

TEST(Kernels, GemmAccumulateMatchesReferenceBitwise) {
  for (const auto& s : kShapes) {
    const auto a = random_matrix(static_cast<std::size_t>(s.m) * s.k, 11, true);
    const auto b = random_matrix(static_cast<std::size_t>(s.k) * s.n, 22, false);
    // Nonzero initial C: accumulate semantics, not overwrite.
    auto c_ref = random_matrix(static_cast<std::size_t>(s.m) * s.n, 33, false);
    auto c_blk = c_ref;
    kernels::ref::gemm_accumulate(a.data(), b.data(), c_ref.data(), s.m, s.k,
                                  s.n);
    kernels::gemm_accumulate(a.data(), b.data(), c_blk.data(), s.m, s.k, s.n);
    ASSERT_EQ(0, std::memcmp(c_ref.data(), c_blk.data(),
                             c_ref.size() * sizeof(float)))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(Kernels, GemmAtBMatchesReferenceBitwise) {
  for (const auto& s : kShapes) {
    // A stored [K,M].
    const auto a = random_matrix(static_cast<std::size_t>(s.k) * s.m, 44, true);
    const auto b = random_matrix(static_cast<std::size_t>(s.k) * s.n, 55, false);
    auto c_ref = random_matrix(static_cast<std::size_t>(s.m) * s.n, 66, false);
    auto c_blk = c_ref;
    kernels::ref::gemm_at_b_accumulate(a.data(), b.data(), c_ref.data(), s.m,
                                       s.k, s.n);
    kernels::gemm_at_b_accumulate(a.data(), b.data(), c_blk.data(), s.m, s.k,
                                  s.n);
    ASSERT_EQ(0, std::memcmp(c_ref.data(), c_blk.data(),
                             c_ref.size() * sizeof(float)))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(Kernels, GemmABtMatchesReferenceBitwise) {
  for (const auto& s : kShapes) {
    const auto a = random_matrix(static_cast<std::size_t>(s.m) * s.k, 77, false);
    // B stored [N,K].
    const auto b = random_matrix(static_cast<std::size_t>(s.n) * s.k, 88, false);
    // Nonzero initial C is the important case: the dot kernel must keep the
    // reference's "fresh accumulator, then one add into C" order, which is
    // NOT equivalent to seeding the accumulator with C.
    auto c_ref = random_matrix(static_cast<std::size_t>(s.m) * s.n, 99, false);
    auto c_blk = c_ref;
    kernels::ref::gemm_a_bt_accumulate(a.data(), b.data(), c_ref.data(), s.m,
                                       s.k, s.n);
    kernels::gemm_a_bt_accumulate(a.data(), b.data(), c_blk.data(), s.m, s.k,
                                  s.n);
    ASSERT_EQ(0, std::memcmp(c_ref.data(), c_blk.data(),
                             c_ref.size() * sizeof(float)))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

// ~90% exact zeros in A trips the adaptive density fallback (scalar
// reference path) even at sliver-wide N; the output bytes must not care
// which implementation dispatch picked.
TEST(Kernels, SparseFallbackMatchesReferenceBitwise) {
  for (const auto& s : kShapes) {
    Rng zrng(1234);
    auto a = random_matrix(static_cast<std::size_t>(s.m) * s.k, 111, false);
    for (auto& v : a) {
      if (zrng.bernoulli(0.9)) v = 0.0f;
    }
    const auto b = random_matrix(static_cast<std::size_t>(s.k) * s.n, 112, false);
    const auto bias = random_matrix(static_cast<std::size_t>(s.m), 113, false);
    auto c_ref = random_matrix(static_cast<std::size_t>(s.m) * s.n, 114, false);
    auto c_blk = c_ref;
    kernels::ref::gemm_accumulate(a.data(), b.data(), c_ref.data(), s.m, s.k,
                                  s.n);
    kernels::gemm_accumulate(a.data(), b.data(), c_blk.data(), s.m, s.k, s.n);
    ASSERT_EQ(0, std::memcmp(c_ref.data(), c_blk.data(),
                             c_ref.size() * sizeof(float)))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;

    // Fused bias+relu through the same fallback.
    std::vector<float> c_fref(static_cast<std::size_t>(s.m) * s.n);
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        c_fref[static_cast<std::size_t>(i) * s.n + j] =
            bias[static_cast<std::size_t>(i)];
      }
    }
    kernels::ref::gemm_accumulate(a.data(), b.data(), c_fref.data(), s.m, s.k,
                                  s.n);
    for (auto& v : c_fref) v = v > 0.0f ? v : 0.0f;
    std::vector<float> c_fused(static_cast<std::size_t>(s.m) * s.n, -1.0f);
    kernels::gemm_bias_accumulate(a.data(), b.data(), bias.data(),
                                  c_fused.data(), s.m, s.k, s.n,
                                  kernels::Epilogue::kRelu);
    ASSERT_EQ(0, std::memcmp(c_fref.data(), c_fused.data(),
                             c_fref.size() * sizeof(float)))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;

    // A^T B with sparse A ([K,M]) takes the ref fallback before transposing.
    const auto at = random_matrix(static_cast<std::size_t>(s.k) * s.m, 115, false);
    auto at_sparse = at;
    Rng zrng2(5678);
    for (auto& v : at_sparse) {
      if (zrng2.bernoulli(0.9)) v = 0.0f;
    }
    auto c_tref = random_matrix(static_cast<std::size_t>(s.m) * s.n, 116, false);
    auto c_tblk = c_tref;
    kernels::ref::gemm_at_b_accumulate(at_sparse.data(), b.data(),
                                       c_tref.data(), s.m, s.k, s.n);
    kernels::gemm_at_b_accumulate(at_sparse.data(), b.data(), c_tblk.data(),
                                  s.m, s.k, s.n);
    ASSERT_EQ(0, std::memcmp(c_tref.data(), c_tblk.data(),
                             c_tref.size() * sizeof(float)))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(Kernels, FusedRowBiasEpilogueMatchesComposition) {
  for (const auto& s : kShapes) {
    const auto a = random_matrix(static_cast<std::size_t>(s.m) * s.k, 101, true);
    const auto b = random_matrix(static_cast<std::size_t>(s.k) * s.n, 102, false);
    const auto bias = random_matrix(static_cast<std::size_t>(s.m), 103, false);
    // Composition: fill rows with bias, then plain accumulate, then relu.
    std::vector<float> c_ref(static_cast<std::size_t>(s.m) * s.n);
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        c_ref[static_cast<std::size_t>(i) * s.n + j] =
            bias[static_cast<std::size_t>(i)];
      }
    }
    kernels::ref::gemm_accumulate(a.data(), b.data(), c_ref.data(), s.m, s.k,
                                  s.n);
    for (auto& v : c_ref) v = v > 0.0f ? v : 0.0f;

    std::vector<float> c_fused(static_cast<std::size_t>(s.m) * s.n, -1.0f);
    kernels::gemm_bias_accumulate(a.data(), b.data(), bias.data(),
                                  c_fused.data(), s.m, s.k, s.n,
                                  kernels::Epilogue::kRelu);
    ASSERT_EQ(0, std::memcmp(c_ref.data(), c_fused.data(),
                             c_ref.size() * sizeof(float)))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(Kernels, FusedColBiasEpilogueMatchesComposition) {
  for (const auto& s : kShapes) {
    const auto a = random_matrix(static_cast<std::size_t>(s.m) * s.k, 201, false);
    const auto b = random_matrix(static_cast<std::size_t>(s.n) * s.k, 202, false);
    const auto bias = random_matrix(static_cast<std::size_t>(s.n), 203, false);
    std::vector<float> c_ref(static_cast<std::size_t>(s.m) * s.n);
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        c_ref[static_cast<std::size_t>(i) * s.n + j] =
            bias[static_cast<std::size_t>(j)];
      }
    }
    kernels::ref::gemm_a_bt_accumulate(a.data(), b.data(), c_ref.data(), s.m,
                                       s.k, s.n);
    for (auto& v : c_ref) v = v > 0.0f ? v : 0.0f;

    std::vector<float> c_fused(static_cast<std::size_t>(s.m) * s.n, -1.0f);
    kernels::gemm_a_bt_bias(a.data(), b.data(), bias.data(), c_fused.data(),
                            s.m, s.k, s.n, kernels::Epilogue::kRelu);
    ASSERT_EQ(0, std::memcmp(c_ref.data(), c_fused.data(),
                             c_ref.size() * sizeof(float)))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(Kernels, AllSupportedIsaTiersAgreeBitwise) {
  const std::string initial = kernels::active_isa();
  const Shape s{9, 257, 129};
  const auto a = random_matrix(static_cast<std::size_t>(s.m) * s.k, 301, true);
  const auto b = random_matrix(static_cast<std::size_t>(s.k) * s.n, 302, false);
  const auto bt = random_matrix(static_cast<std::size_t>(s.n) * s.k, 303, false);
  const auto c0 = random_matrix(static_cast<std::size_t>(s.m) * s.n, 304, false);

  std::vector<std::vector<float>> direct_results;
  std::vector<std::vector<float>> dot_results;
  for (const char* isa : {"sse2", "avx2", "avx512"}) {
    try {
      kernels::force_isa(isa);
    } catch (const ConfigError&) {
      continue;  // host lacks this tier
    }
    auto c_direct = c0;
    kernels::gemm_accumulate(a.data(), b.data(), c_direct.data(), s.m, s.k,
                             s.n);
    direct_results.push_back(std::move(c_direct));
    auto c_dot = c0;
    kernels::gemm_a_bt_accumulate(a.data(), bt.data(), c_dot.data(), s.m, s.k,
                                  s.n);
    dot_results.push_back(std::move(c_dot));
  }
  kernels::force_isa(initial.c_str());

  ASSERT_GE(direct_results.size(), 1u);  // sse2 is always supported
  for (std::size_t i = 1; i < direct_results.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(direct_results[0].data(),
                             direct_results[i].data(),
                             direct_results[0].size() * sizeof(float)));
    EXPECT_EQ(0,
              std::memcmp(dot_results[0].data(), dot_results[i].data(),
                          dot_results[0].size() * sizeof(float)));
  }
}

TEST(Kernels, ForceIsaRejectsUnknownName) {
  EXPECT_THROW(kernels::force_isa("avx9000"), ConfigError);
  EXPECT_THROW(kernels::force_isa(nullptr), Error);
}

TEST(Kernels, MaxpoolMatchesNaiveReferenceWithArgmax) {
  Rng rng(7);
  for (const auto [h, w, kernel, stride] :
       {std::array<int, 4>{8, 8, 2, 2}, std::array<int, 4>{9, 7, 2, 2},
        std::array<int, 4>{8, 8, 3, 1}, std::array<int, 4>{11, 5, 3, 2}}) {
    Tensor x({2, 3, h, w});
    for (std::size_t i = 0; i < x.numel(); ++i) {
      x[i] = static_cast<float>(rng.uniform() * 2.0 - 1.0);
      if (rng.bernoulli(0.2)) x[i] = 0.5f;  // ties exercise argmax order
    }
    std::vector<int> argmax;
    Tensor out = ops::maxpool_forward(x, kernel, stride, argmax);

    // Naive reference: the original unhoisted scan.
    const int oh = ops::out_dim(h, kernel, stride);
    const int ow = ops::out_dim(w, kernel, stride);
    std::size_t oi = 0;
    for (int n = 0; n < 2; ++n) {
      for (int c = 0; c < 3; ++c) {
        const float* plane =
            x.data() + (static_cast<std::size_t>(n) * 3 + c) * h * w;
        for (int y = 0; y < oh; ++y) {
          for (int xx = 0; xx < ow; ++xx) {
            float best = -std::numeric_limits<float>::infinity();
            int best_idx = 0;
            for (int ky = 0; ky < kernel; ++ky) {
              for (int kx = 0; kx < kernel; ++kx) {
                const int idx = (y * stride + ky) * w + (xx * stride + kx);
                if (plane[idx] > best) {
                  best = plane[idx];
                  best_idx = idx;
                }
              }
            }
            ASSERT_EQ(best, out[oi]) << "k=" << kernel << " s=" << stride;
            ASSERT_EQ(best_idx, argmax[oi]) << "k=" << kernel
                                            << " s=" << stride;
            ++oi;
          }
        }
      }
    }
  }
}

TEST(Kernels, AugmentImageIntoMatchesAugmentImage) {
  Rng fill(5);
  Tensor img({3, 16, 16});
  for (std::size_t i = 0; i < img.numel(); ++i) {
    img[i] = static_cast<float>(fill.uniform());
  }
  for (bool flip : {false, true}) {
    // Same seed on both sides: the draws (dx, dy, flip) must line up.
    Rng rng_a(99), rng_b(99);
    for (int round = 0; round < 8; ++round) {
      Tensor via_tensor = augment_image(img, flip, rng_a);
      std::vector<float> via_span(img.numel());
      augment_image_into(img.data(), via_span.data(), 3, 16, 16, flip, rng_b);
      ASSERT_EQ(0, std::memcmp(via_tensor.data(), via_span.data(),
                               via_span.size() * sizeof(float)));
    }
  }
}

TEST(Kernels, FusedForwardOpsMatchUnfusedCompositionBitwise) {
  Rng rng(21);
  Tensor x({2, 3, 12, 12});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
  Tensor wt({5, 3, 3, 3});
  wt.randn_(rng, 0.5f);
  Tensor bias({5});
  bias.randn_(rng, 0.5f);
  std::vector<float> scratch;
  Tensor plain = ops::relu_forward(ops::conv2d_forward(x, wt, bias, scratch));
  Tensor fused = ops::conv2d_forward(x, wt, bias, scratch, /*fuse_relu=*/true);
  ASSERT_EQ(plain.shape(), fused.shape());
  EXPECT_EQ(0, std::memcmp(plain.data(), fused.data(),
                           plain.numel() * sizeof(float)));

  Tensor xl({4, 30});
  for (std::size_t i = 0; i < xl.numel(); ++i) {
    xl[i] = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
  Tensor wl({9, 30});
  wl.randn_(rng, 0.5f);
  Tensor bl({9});
  bl.randn_(rng, 0.5f);
  Tensor lplain = ops::relu_forward(ops::linear_forward(xl, wl, bl));
  Tensor lfused = ops::linear_forward(xl, wl, bl, /*fuse_relu=*/true);
  ASSERT_EQ(lplain.shape(), lfused.shape());
  EXPECT_EQ(0, std::memcmp(lplain.data(), lfused.data(),
                           lplain.numel() * sizeof(float)));
}

// End-to-end keystone: a seeded train -> eval pipeline must produce
// byte-identical evaluation records whether the eval runs serially or across
// worker threads (the batch grid and per-batch math are thread-invariant).
TEST(Kernels, TrainEvalByteIdenticalAcrossThreadCounts) {
  SyntheticSpec spec = cifar10_like_spec();
  spec.train_size = 60;
  spec.test_size = 50;
  SyntheticDataset data = make_synthetic(spec);

  Rng rng(42);
  CnvConfig cfg = CnvConfig{}.scaled(0.125);
  cfg.num_classes = spec.num_classes;
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 16;
  train_model(model, data.train, spec.flip_symmetry, tc);

  const auto serial = evaluate_exits(model, data.test, 16, /*num_threads=*/1);
  for (int threads : {2, 4}) {
    const auto parallel = evaluate_exits(model, data.test, 16, threads);
    ASSERT_EQ(serial.confidence.size(), parallel.confidence.size());
    for (std::size_t s = 0; s < serial.confidence.size(); ++s) {
      ASSERT_EQ(0, std::memcmp(serial.confidence[s].data(),
                               parallel.confidence[s].data(),
                               serial.confidence[s].size() * sizeof(float)))
          << "threads=" << threads << " sample=" << s;
      ASSERT_TRUE(serial.correct[s] == parallel.correct[s]);
    }
  }
}

}  // namespace
}  // namespace adapex
