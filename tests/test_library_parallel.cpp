// Tests for the parallel library generator (determinism across thread
// counts), the work-stealing thread pool, splitmix seed derivation, and the
// value-sensitive artifact-cache key.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <set>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/scale.hpp"
#include "library/cache.hpp"
#include "library/generator.hpp"

namespace adapex {
namespace {

/// A spec small enough to generate a few times per test run, but covering
/// all three families and several rates so the sweep really fans out.
LibraryGenSpec fast_spec() {
  auto spec = make_gen_spec(cifar10_like_spec(), ExperimentScale::tiny());
  spec.dataset.train_size = 120;
  spec.dataset.test_size = 60;
  spec.initial_train.epochs = 3;
  spec.retrain.epochs = 1;
  spec.prune_rates_pct = {0, 25, 50};
  spec.conf_thresholds_pct = {0, 50};
  return spec;
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 200);
  // The pool is reusable after a barrier.
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 250);
}

TEST(ThreadPool, ThrowingTaskDoesNotTerminateAndWaitRethrows) {
  // Before the exception-capture contract a throwing task escaped into its
  // worker thread and std::terminate()d the whole process.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran, i] {
      if (i == 3) throw ConfigError("task 3 failed");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(pool.wait(), ConfigError);
  // Tasks that ran before the failure completed; none ran twice.
  EXPECT_LE(ran.load(), 7);
}

TEST(ThreadPool, FirstExceptionWinsAndQueueDrains) {
  // Single worker: deterministic order. The first throwing task's exception
  // is the one wait() rethrows, and every task queued after the failure is
  // drained without running.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  pool.submit([] { throw ConfigError("first"); });
  pool.submit([] { throw ParseError("second"); });
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  try {
    pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const ConfigError& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, ReusableAfterFailure) {
  // wait() resets the failure state: the next submit/wait round behaves as
  // if the pool were freshly constructed.
  ThreadPool pool(3);
  pool.submit([] { throw ConfigError("boom"); });
  EXPECT_THROW(pool.wait(), ConfigError);

  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, EnvThreadCountParsing) {
  ASSERT_EQ(setenv("ADAPEX_THREADS", "6", 1), 0);
  EXPECT_EQ(ThreadPool::env_thread_count(), 6u);
  ASSERT_EQ(setenv("ADAPEX_THREADS", "0", 1), 0);
  EXPECT_THROW(ThreadPool::env_thread_count(), ConfigError);
  ASSERT_EQ(setenv("ADAPEX_THREADS", "lots", 1), 0);
  EXPECT_THROW(ThreadPool::env_thread_count(), ConfigError);
  ASSERT_EQ(unsetenv("ADAPEX_THREADS"), 0);
  EXPECT_GE(ThreadPool::env_thread_count(), 1u);
}

TEST(SeedDerivation, UniqueAcrossSweepAndRoots) {
  // The retrain seed for every (variant, rate) design point must be unique,
  // including across nearby root seeds — the old additive scheme placed all
  // streams within a few thousand of the root, so roots 15 apart reused
  // each other's retrain streams and roots ~1000 apart collided them with
  // the base-training seeds seed+1 / seed+11.
  std::set<std::uint64_t> seen;
  std::size_t expected = 0;
  for (std::uint64_t root = 7; root < 11; ++root) {
    for (std::uint64_t variant = 0; variant < 3; ++variant) {
      for (int rate = 0; rate <= 85; rate += 5) {
        seen.insert(derive_seed(root, variant, static_cast<std::uint64_t>(rate)));
        ++expected;
      }
    }
  }
  EXPECT_EQ(seen.size(), expected);
}

TEST(LibraryParallel, ByteIdenticalAcrossThreadCounts) {
  auto serial = fast_spec();
  serial.num_threads = 1;
  const Library lib1 = generate_library(serial);

  auto parallel = fast_spec();
  parallel.num_threads = 4;
  const Library lib4 = generate_library(parallel);

  // Compare the saved artifacts byte for byte, not just the in-memory rows.
  const std::string p1 = "/tmp/adapex_parallel_t1.json";
  const std::string p4 = "/tmp/adapex_parallel_t4.json";
  lib1.save(p1);
  lib4.save(p4);
  const std::string bytes1 = read_file(p1);
  const std::string bytes4 = read_file(p4);
  std::remove(p1.c_str());
  std::remove(p4.c_str());
  ASSERT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, bytes4);
}

TEST(LibraryParallel, ThreadCountFromEnv) {
  auto spec = fast_spec();
  spec.variants = {ModelVariant::kNoExit};
  spec.prune_rates_pct = {0, 50};
  spec.num_threads = 1;
  const std::string serial = generate_library(spec).to_json().dump(1);

  ASSERT_EQ(setenv("ADAPEX_THREADS", "3", 1), 0);
  spec.num_threads = 0;  // resolve from the environment
  const std::string via_env = generate_library(spec).to_json().dump(1);
  ASSERT_EQ(unsetenv("ADAPEX_THREADS"), 0);
  EXPECT_EQ(serial, via_env);
}

TEST(LibraryParallel, OrderedProgressAtAnyThreadCount) {
  auto spec = fast_spec();
  std::vector<std::string> serial_msgs, parallel_msgs;
  spec.num_threads = 1;
  spec.on_progress = [&](const std::string& s) { serial_msgs.push_back(s); };
  generate_library(spec);
  spec.num_threads = 4;
  spec.on_progress = [&](const std::string& s) { parallel_msgs.push_back(s); };
  generate_library(spec);
  // The parallel run adds one "sweeping N design points" banner; the
  // per-design-point messages must arrive in the identical sweep order.
  std::vector<std::string> filtered;
  for (const auto& m : parallel_msgs) {
    if (!m.starts_with("sweeping")) filtered.push_back(m);
  }
  EXPECT_EQ(filtered, serial_msgs);
}

TEST(LibraryCacheKey, SensitiveToEveryGenerationKnob) {
  const auto base = fast_spec();
  const std::string base_key = library_cache_key(base);

  // Equal specs, equal keys; output-irrelevant knobs leave the key alone.
  EXPECT_EQ(library_cache_key(fast_spec()), base_key);
  {
    auto s = fast_spec();
    s.num_threads = 8;
    s.on_progress = [](const std::string&) {};
    EXPECT_EQ(library_cache_key(s), base_key);
  }

  // Sweep *values* at unchanged sizes (the schema-v1 bug).
  auto mutate = [&](auto&& fn) {
    auto s = fast_spec();
    fn(s);
    EXPECT_NE(library_cache_key(s), base_key);
  };
  mutate([](LibraryGenSpec& s) { s.prune_rates_pct.back() = 55; });
  mutate([](LibraryGenSpec& s) { s.conf_thresholds_pct.back() = 45; });
  mutate([](LibraryGenSpec& s) {
    s.variants = {ModelVariant::kNoExit, ModelVariant::kPrunedExits};
  });
  mutate([](LibraryGenSpec& s) {
    s.variants = {ModelVariant::kNoExit, ModelVariant::kNotPrunedExits};
  });

  // Exits configuration.
  mutate([](LibraryGenSpec& s) { s.exits.exits[0].ops = ExitOps::kPoolFc; });
  mutate([](LibraryGenSpec& s) { s.exits.exits.pop_back(); });
  mutate([](LibraryGenSpec& s) { s.exits.prune_exits = true; });

  // Folding style / device model / power / reconfig (omitted in v1).
  mutate([](LibraryGenSpec& s) { s.folding_style.conv_caps_per_block[0] = {8, 36}; });
  mutate([](LibraryGenSpec& s) { s.folding_style.fc_caps = {4, 8}; });
  mutate([](LibraryGenSpec& s) { s.folding_style.exit_conv_caps = {2, 12}; });
  mutate([](LibraryGenSpec& s) { s.accel.fclk_mhz = 150.0; });
  mutate([](LibraryGenSpec& s) { s.accel.cost.fifo_depth = 128; });
  mutate([](LibraryGenSpec& s) { s.accel.cost.lut_per_pe = 50.0; });
  mutate([](LibraryGenSpec& s) { s.power.static_w = 0.9; });
  mutate([](LibraryGenSpec& s) { s.power.w_per_klut = 0.05; });
  mutate([](LibraryGenSpec& s) { s.reconfig.base_ms = 200.0; });

  // Full train configs (v1 hashed epochs only).
  mutate([](LibraryGenSpec& s) { s.initial_train.lr *= 2.0; });
  mutate([](LibraryGenSpec& s) { s.initial_train.momentum = 0.8; });
  mutate([](LibraryGenSpec& s) { s.initial_train.seed += 1; });
  mutate([](LibraryGenSpec& s) { s.initial_train.augment = false; });
  mutate([](LibraryGenSpec& s) { s.initial_train.exit_weights = {1.0, 0.5, 0.5}; });
  mutate([](LibraryGenSpec& s) { s.retrain.lr *= 2.0; });
  mutate([](LibraryGenSpec& s) { s.retrain.epochs += 1; });

  // Dataset and model knobs that were already hashed stay hashed.
  mutate([](LibraryGenSpec& s) { s.dataset.flip_symmetry = false; });
  mutate([](LibraryGenSpec& s) { s.dataset.max_shift = 1; });
  mutate([](LibraryGenSpec& s) { s.dataset.seed += 1; });
  mutate([](LibraryGenSpec& s) { s.cnv.weight_bits = 4; });
  mutate([](LibraryGenSpec& s) { s.seed += 1; });
}

TEST(LibraryCache, CorruptArtifactIsRegenerated) {
  const std::string dir = "/tmp/adapex_test_cache_corrupt";
  std::filesystem::remove_all(dir);
  auto spec = fast_spec();
  spec.variants = {ModelVariant::kNoExit};
  spec.prune_rates_pct = {0};
  spec.conf_thresholds_pct = {50};

  const Library first = generate_or_load_library(spec, dir);
  const std::string path = dir + "/library_" + library_cache_key(spec) + ".json";
  ASSERT_TRUE(std::filesystem::exists(path));

  // Truncate the artifact mid-document, as a crashed pre-atomic-publish
  // writer would have left it.
  write_file(path, "{\"dataset\": \"cifar10-like\", \"entr");
  std::vector<std::string> msgs;
  spec.on_progress = [&](const std::string& s) { msgs.push_back(s); };
  const Library second = generate_or_load_library(spec, dir);
  EXPECT_EQ(second.entries.size(), first.entries.size());
  EXPECT_DOUBLE_EQ(second.reference_accuracy, first.reference_accuracy);
  bool reported = false;
  for (const auto& m : msgs) {
    if (m.starts_with("cache: quarantining corrupt artifact")) reported = true;
  }
  EXPECT_TRUE(reported);

  // The corrupt bytes were preserved for postmortem, not deleted, and the
  // regenerated artifact is valid. Apart from the quarantine file no other
  // debris (temp files) is left behind.
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  EXPECT_NO_THROW(Library::load(path));
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const auto ext = e.path().extension();
    EXPECT_TRUE(ext == ".json" || ext == ".corrupt") << e.path();
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace adapex
